package sched

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/trace"
)

func flavors() *trace.FlavorSet {
	return &trace.FlavorSet{Defs: []trace.FlavorDef{
		{Name: "cpu-heavy", CPU: 4, MemGB: 4},
		{Name: "mem-heavy", CPU: 1, MemGB: 16},
		{Name: "tiny", CPU: 1, MemGB: 1},
	}}
}

func mkTrace(specs ...[3]int) *trace.Trace {
	// Each spec: {flavor, startPeriod, durationSeconds}.
	tr := &trace.Trace{Flavors: flavors(), Periods: 100}
	for i, s := range specs {
		tr.VMs = append(tr.VMs, trace.VM{
			ID: i, User: i, Flavor: s[0], Start: s[1], Duration: float64(s[2]),
		})
	}
	return tr
}

func TestServerFits(t *testing.T) {
	s := Server{CPUCap: 4, MemCap: 8, CPUUsed: 3, MemUsed: 4}
	if !s.Fits(Request{CPU: 1, Mem: 4}) {
		t.Fatal("exact fit should fit")
	}
	if s.Fits(Request{CPU: 1.5, Mem: 1}) {
		t.Fatal("CPU overflow should not fit")
	}
	if s.Fits(Request{CPU: 0.5, Mem: 5}) {
		t.Fatal("memory overflow should not fit")
	}
}

func TestRandomChoosesOnlyFeasible(t *testing.T) {
	g := rng.New(1)
	servers := []Server{
		{CPUCap: 1, MemCap: 1, CPUUsed: 1}, // full
		{CPUCap: 4, MemCap: 4},             // free
		{CPUCap: 2, MemCap: 2, CPUUsed: 2}, // full
	}
	for i := 0; i < 100; i++ {
		if got := (Random{}).Choose(servers, Request{CPU: 1, Mem: 1}, g); got != 1 {
			t.Fatalf("chose infeasible server %d", got)
		}
	}
	full := []Server{{CPUCap: 1, MemCap: 1, CPUUsed: 1}}
	if got := (Random{}).Choose(full, Request{CPU: 1, Mem: 1}, g); got != -1 {
		t.Fatalf("expected -1, got %d", got)
	}
}

func TestBusiestFitPrefersFuller(t *testing.T) {
	servers := []Server{
		{CPUCap: 10, MemCap: 10, CPUUsed: 1, MemUsed: 1},
		{CPUCap: 10, MemCap: 10, CPUUsed: 8, MemUsed: 8},
		{CPUCap: 10, MemCap: 10, CPUUsed: 4, MemUsed: 4},
	}
	if got := (BusiestFit{}).Choose(servers, Request{CPU: 1, Mem: 1}, nil); got != 1 {
		t.Fatalf("busiest-fit chose %d", got)
	}
	// When the busiest cannot fit, fall to the next busiest.
	if got := (BusiestFit{}).Choose(servers, Request{CPU: 3, Mem: 3}, nil); got != 2 {
		t.Fatalf("busiest-fit chose %d", got)
	}
}

func TestCosinePrefersAlignedServer(t *testing.T) {
	// CPU-heavy request should go to the server with proportionally more
	// free CPU than memory.
	servers := []Server{
		{CPUCap: 10, MemCap: 10, CPUUsed: 0, MemUsed: 8}, // free: (1.0, 0.2)
		{CPUCap: 10, MemCap: 10, CPUUsed: 8, MemUsed: 0}, // free: (0.2, 1.0)
	}
	req := Request{CPU: 2, Mem: 0.4} // cpu-dominant
	if got := (CosineSimilarity{}).Choose(servers, req, nil); got != 0 {
		t.Fatalf("cosine chose %d", got)
	}
}

func TestDeltaPerpPrefersBalancing(t *testing.T) {
	// Server 0 is CPU-loaded; a memory-heavy request balances it
	// (reduces perp distance). Server 1 is empty; the same request
	// unbalances it.
	servers := []Server{
		{CPUCap: 10, MemCap: 10, CPUUsed: 5, MemUsed: 0},
		{CPUCap: 10, MemCap: 10},
	}
	req := Request{CPU: 0.5, Mem: 5}
	if got := (DeltaPerpDistance{}).Choose(servers, req, nil); got != 0 {
		t.Fatalf("delta-perp chose %d", got)
	}
}

func TestAlgorithmsList(t *testing.T) {
	algs := Algorithms()
	if len(algs) != 4 {
		t.Fatalf("got %d algorithms", len(algs))
	}
	names := map[string]bool{}
	for _, a := range algs {
		names[a.Name()] = true
	}
	for _, want := range []string{"Random", "BusiestFit", "Cosine", "DeltaPerp"} {
		if !names[want] {
			t.Fatalf("missing algorithm %q", want)
		}
	}
}

func TestEventsOrderingAndInterleaving(t *testing.T) {
	// Two VMs in period 0; one lives 10 minutes (departs period 2), one
	// lives long.
	tr := mkTrace([3]int{0, 0, 600}, [3]int{1, 0, 86400})
	evs := Events(tr, nil)
	if len(evs) != 4 {
		t.Fatalf("got %d events", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Fatal("events out of order")
		}
	}
	// Both arrivals inside period 0.
	var arrivals int
	for _, e := range evs {
		if e.Arrival {
			arrivals++
			if e.Time < 0 || e.Time >= trace.PeriodSeconds {
				t.Fatalf("arrival at %v outside period 0", e.Time)
			}
		}
	}
	if arrivals != 2 {
		t.Fatalf("arrivals = %d", arrivals)
	}
	// Arrival order within the period follows trace order.
	if !evs[0].Arrival || tr.VMs[evs[0].VM].ID != 0 {
		t.Fatal("first arrival should be VM 0")
	}
}

func TestEventsDepartureJitterStaysInPeriod(t *testing.T) {
	tr := mkTrace([3]int{0, 0, 600})
	g := rng.New(3)
	for i := 0; i < 50; i++ {
		evs := Events(tr, g)
		for _, e := range evs {
			if !e.Arrival {
				nominal := evs[0].Time + 600
				nominalPeriod := math.Floor(nominal / trace.PeriodSeconds)
				gotPeriod := math.Floor(e.Time / trace.PeriodSeconds)
				if gotPeriod != nominalPeriod {
					t.Fatalf("departure moved out of period: %v vs %v", gotPeriod, nominalPeriod)
				}
			}
		}
	}
}

// TestEventsDeterministic is a regression test: event construction must
// not depend on map iteration order, or every packing experiment
// becomes unreproducible across processes.
func TestEventsDeterministic(t *testing.T) {
	specs := make([][3]int, 200)
	for i := range specs {
		specs[i] = [3]int{i % 3, (i * 7) % 50, 100 + i*13}
	}
	tr := mkTrace(specs...)
	tr.SortVMs()
	a := Events(tr, rng.New(9))
	b := Events(tr, rng.New(9))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPackFillsUntilFailure(t *testing.T) {
	// 10 long-lived CPU-heavy VMs (4 CPU each) onto 2 servers of 8 CPU:
	// only 4 fit, the 5th placement fails with full CPU.
	specs := make([][3]int, 10)
	for i := range specs {
		specs[i] = [3]int{0, 0, 9999999}
	}
	tr := mkTrace(specs...)
	evs := Events(tr, nil)
	res := Pack(tr, evs, PackOptions{Servers: 2, CPUCap: 8, MemCap: 1000, Alg: BusiestFit{}}, nil)
	if !res.Failed {
		t.Fatal("expected failure")
	}
	if res.Placed != 4 {
		t.Fatalf("placed %d, want 4", res.Placed)
	}
	if res.CPUFFAR != 1 {
		t.Fatalf("CPU FFAR = %v, want 1", res.CPUFFAR)
	}
	if res.Limiting != 1 {
		t.Fatalf("limiting = %v", res.Limiting)
	}
	if res.MemFFAR >= res.CPUFFAR {
		t.Fatal("memory should not be limiting")
	}
}

func TestPackDeparturesFreeCapacity(t *testing.T) {
	// VM 0 occupies a server then departs; VM 1 arrives later and fits.
	tr := mkTrace([3]int{0, 0, 300}, [3]int{0, 5, 9999})
	evs := Events(tr, nil)
	res := Pack(tr, evs, PackOptions{Servers: 1, CPUCap: 4, MemCap: 4, Alg: BusiestFit{}}, nil)
	if res.Failed {
		t.Fatal("should not fail when departures free capacity")
	}
	if res.Placed != 2 {
		t.Fatalf("placed %d", res.Placed)
	}
}

func TestPackNoDeparts(t *testing.T) {
	tr := mkTrace([3]int{0, 0, 300}, [3]int{0, 5, 9999})
	evs := Events(tr, nil)
	res := Pack(tr, evs, PackOptions{Servers: 1, CPUCap: 4, MemCap: 4, Alg: BusiestFit{}, NoDeparts: true}, nil)
	if !res.Failed || res.Placed != 1 {
		t.Fatalf("arrivals-only should fail at second VM: %+v", res)
	}
}

func TestPackStartSkipsEarlierVMs(t *testing.T) {
	tr := mkTrace([3]int{0, 0, 9999999}, [3]int{0, 1, 9999999})
	evs := Events(tr, nil)
	// Starting after the first arrival, only the second VM is placed and
	// the departure of the never-placed first VM is ignored.
	res := Pack(tr, evs, PackOptions{Servers: 1, CPUCap: 4, MemCap: 4, Alg: BusiestFit{}, Start: 1}, nil)
	if res.Failed || res.Placed != 1 {
		t.Fatalf("start-offset pack: %+v", res)
	}
}

func TestPackBadOptionsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Pack(mkTrace(), nil, PackOptions{}, nil)
}

func TestReuseDistances(t *testing.T) {
	// Flavor sequence: 0, 0, 1, 0, 2, 1.
	tr := mkTrace(
		[3]int{0, 0, 1}, [3]int{0, 0, 1}, [3]int{1, 0, 1},
		[3]int{0, 0, 1}, [3]int{2, 0, 1}, [3]int{1, 0, 1},
	)
	d := ReuseDistances(tr)
	want := []int{math.MaxInt, 0, math.MaxInt, 1, math.MaxInt, 2}
	for i, w := range want {
		if d[i] != w {
			t.Fatalf("distance %d = %d, want %d (all %v)", i, d[i], w, d)
		}
	}
}

func TestReuseHistogram(t *testing.T) {
	h := ReuseHistogram([]int{0, 0, 1, 5, 6, math.MaxInt})
	if math.Abs(h[0]-2.0/6.0) > 1e-12 {
		t.Fatalf("bucket 0 = %v", h[0])
	}
	if math.Abs(h[6]-2.0/6.0) > 1e-12 {
		t.Fatalf("bucket 6+ = %v", h[6])
	}
	empty := ReuseHistogram(nil)
	for _, v := range empty {
		if v != 0 {
			t.Fatal("empty histogram should be zeros")
		}
	}
}

func TestSampleTuplesInRange(t *testing.T) {
	g := rng.New(9)
	r := TupleRanges{MinServers: 10, MaxServers: 50, MinCPU: 16, MaxCPU: 64, MinMem: 64, MaxMem: 256}
	tuples := SampleTuples(g, 200, r)
	for _, tp := range tuples {
		if tp.Servers < 10 || tp.Servers > 50 {
			t.Fatalf("servers %d", tp.Servers)
		}
		if tp.CPUCap < 16 || tp.CPUCap > 64 {
			t.Fatalf("cpu %v", tp.CPUCap)
		}
		if tp.MemCap < 64 || tp.MemCap > 256 {
			t.Fatalf("mem %v", tp.MemCap)
		}
		if tp.StartFrac < 0 || tp.StartFrac >= 0.5 {
			t.Fatalf("start %v", tp.StartFrac)
		}
		if tp.AlgIndex < 0 || tp.AlgIndex >= 4 {
			t.Fatalf("alg %d", tp.AlgIndex)
		}
	}
}

func TestRunTuple(t *testing.T) {
	specs := make([][3]int, 50)
	for i := range specs {
		specs[i] = [3]int{i % 3, i / 10, 3000}
	}
	tr := mkTrace(specs...)
	evs := Events(tr, nil)
	g := rng.New(4)
	res := RunTuple(tr, evs, Tuple{StartFrac: 0, Servers: 2, CPUCap: 8, MemCap: 32, AlgIndex: 1}, g)
	if res.Placed == 0 {
		t.Fatal("nothing placed")
	}
	if res.Limiting < res.CPUFFAR-1e-12 || res.Limiting < res.MemFFAR-1e-12 {
		t.Fatal("limiting must be the max FFAR")
	}
}
