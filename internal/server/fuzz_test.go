package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/obs"
)

var (
	fuzzOnce sync.Once
	fuzzH    http.Handler
)

// fuzzHandler shares one tiny trained server across fuzz executions,
// with the request caps turned way down so a "valid" fuzz input decodes
// a handful of periods instead of four weeks.
func fuzzHandler(t testing.TB) http.Handler {
	fuzzOnce.Do(func() {
		shared := testServer(t)
		s := NewWithRegistry(shared.currentModel(), shared.catalog, obs.NewRegistry())
		s.MaxPeriods = 8
		s.MaxScale = 4
		s.BatchWindow = 0
		fuzzH = s.Handler()
	})
	return fuzzH
}

// FuzzGenerateRequest throws arbitrary bodies at POST /generate. The
// handler must answer every one — 200 for valid requests, 400 for
// malformed or out-of-cap ones — and never panic or hang in a decode
// loop. Seed corpus: testdata/fuzz/FuzzGenerateRequest plus the
// programmatic seeds below.
func FuzzGenerateRequest(f *testing.F) {
	seeds := []string{
		`{"periods": 4}`,
		`{"periods": 4, "seed": 9, "scale": 2, "format": "json"}`,
		`{"periods": 4, "start_period": 600, "format": "csv"}`,
		`{"periods": -1}`,
		`{"periods": 1e309}`,
		`{"periods": "many"}`,
		`{"periods": 4, "scale": -1}`,
		`{"periods": 4, "scale": 1e300}`,
		`{"periods": 4, "start_period": -3}`,
		`{"periods": 4, "format": "yaml"}`,
		`{"periods`,
		``,
		`[1,2,3]`,
		"\x00\x01\x02",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		h := fuzzHandler(t)
		req := httptest.NewRequest("POST", "/generate", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest:
		default:
			t.Fatalf("unexpected status %d for body %q: %s", rec.Code, body, rec.Body.String())
		}
	})
}
