package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/trace"
)

// freshServer clones the shared test model into a private Server so
// reload tests can swap snapshots without disturbing other tests.
func freshServer(t *testing.T) *Server {
	t.Helper()
	shared := testServer(t)
	return NewWithRegistry(shared.currentModel(), shared.catalog, obs.NewRegistry())
}

// TestHotReloadUnderLoad is the tentpole serving guarantee: hot
// reloading the model while /generate requests are in flight drops no
// request and changes no response bytes. Run with -race (scripts/
// check.sh does): the snapshot swap and the engine retry path are
// exactly where a data race would live.
func TestHotReloadUnderLoad(t *testing.T) {
	testHotReloadUnderLoad(t, func(*Server) {})
}

// TestHotReloadUnderLoadSharded is the same guarantee with the sharded
// decode engine: reload must drain and replay across all shards
// without dropping or changing a request, and the engine rebuilt after
// the swap must come back sharded. Run with -race via scripts/check.sh.
func TestHotReloadUnderLoadSharded(t *testing.T) {
	testHotReloadUnderLoad(t, func(s *Server) {
		s.EngineKind = string(core.EngineSharded)
		s.DecodeShards = 4
	})
}

func testHotReloadUnderLoad(t *testing.T, configure func(*Server)) {
	s := freshServer(t)
	s.BatchWindow = 0
	configure(s)
	h := s.Handler()

	body := func(seed int64) string {
		return fmt.Sprintf(`{"periods": 24, "seed": %d, "format": "json"}`, seed)
	}
	// Reference bytes per seed, captured with no reloads happening.
	const seeds = 4
	want := make([]string, seeds)
	for i := range want {
		rec := do(t, h, "POST", "/generate", body(int64(i+1)))
		if rec.Code != http.StatusOK {
			t.Fatalf("reference request: status %d: %s", rec.Code, rec.Body.String())
		}
		want[i] = rec.Body.String()
	}

	const workers = 8
	const perWorker = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				seed := int64(w%seeds + 1)
				rec := do(t, h, "POST", "/generate", body(seed))
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("worker %d: status %d: %s", w, rec.Code, rec.Body.String())
					return
				}
				if got := rec.Body.String(); got != want[seed-1] {
					errs <- fmt.Errorf("worker %d: seed %d response changed across reload", w, seed)
					return
				}
			}
		}(w)
	}
	// Swap the serving snapshot repeatedly while the workers hammer
	// /generate. The model is identical, so the response bytes must be
	// too — which is precisely what makes dropped or corrupted requests
	// observable.
	model, catalog := s.currentModel(), s.catalog
	for i := 0; i < 10; i++ {
		s.Reload(model, catalog)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestHotReloadRepacksPanels pins the publish-time packing contract
// across a weight swap: a reload that actually changes the model must
// serve the NEW model's bytes immediately after the swap, with zero
// dropped or torn requests while it happens. The reference bytes come
// from the new model's scalar serial decode — the unpacked honest
// baseline — so a rebuilt engine reusing stale panels (or packing the
// old weights) could not pass: the packed decode is bit-exact, and the
// only way to produce the new bytes through packed fleets is freshly
// packed panels. Run with -race via scripts/check.sh.
func TestHotReloadRepacksPanels(t *testing.T) {
	s := freshServer(t)
	s.BatchWindow = 0
	h := s.Handler()

	const seed, periods = 5, 24
	body := fmt.Sprintf(`{"periods": %d, "seed": %d, "format": "json"}`, periods, seed)

	oldModel := s.currentModel()
	oldWant := refF64Bytes(t, s, oldModel, seed, periods)
	rec := do(t, h, "POST", "/generate", body)
	if rec.Code != http.StatusOK || rec.Body.String() != oldWant {
		t.Fatalf("pre-reload serve mismatch (status %d)", rec.Code)
	}

	// Deep-copy the snapshot and perturb the copy's weights, so the
	// reload is a real weight swap (the shared test model is untouched).
	blob, err := oldModel.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	newModel := new(core.Model)
	if err := newModel.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	for _, net := range []interface{ Params() []*nn.Param }{newModel.Flavor.Net, newModel.Lifetime.Net} {
		for _, p := range net.Params() {
			for i := range p.Value.Data {
				p.Value.Data[i] *= 1.25
			}
		}
	}
	newWant := refF64Bytes(t, s, newModel, seed, periods)
	if newWant == oldWant {
		t.Fatal("perturbed model decodes identically; the reload check would be vacuous")
	}

	// Hammer /generate across the swap: every response must be exactly
	// the old or the new model's bytes — never an error, never a blend.
	const workers = 8
	const perWorker = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rec := do(t, h, "POST", "/generate", body)
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("worker %d: status %d: %s", w, rec.Code, rec.Body.String())
					return
				}
				if got := rec.Body.String(); got != oldWant && got != newWant {
					errs <- fmt.Errorf("worker %d: response matches neither snapshot", w)
					return
				}
			}
		}(w)
	}
	s.Reload(newModel, s.catalog)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The settled server must serve from freshly packed new-model
	// panels: exactly the new model's unpacked serial reference bytes.
	rec = do(t, h, "POST", "/generate", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-reload: status %d: %s", rec.Code, rec.Body.String())
	}
	if rec.Body.String() != newWant {
		t.Fatal("post-reload response is not the new model's reference decode; stale weights or stale panels are being served")
	}
}

// refF64Bytes decodes one stream through the model's scalar serial
// reference path (Model.Generate, unpacked weights) and serializes it
// the way /generate does.
func refF64Bytes(t *testing.T, s *Server, m *core.Model, seed int64, periods int) string {
	t.Helper()
	start := m.Flavor.HistoryDays * trace.PeriodsPerDay
	w := trace.Window{Start: start, End: start + periods}
	tr := core.WithCatalog(m.Generate(rng.New(seed), w), s.catalog)
	var buf strings.Builder
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestReloadEndpoint(t *testing.T) {
	s := freshServer(t)
	h := s.Handler()

	// Unconfigured: explicit 501, not a panic.
	rec := do(t, h, "POST", "/-/reload", "")
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("no ReloadFunc: status %d", rec.Code)
	}

	s.ReloadFunc = func() (*core.Model, *trace.FlavorSet, error) { return nil, nil, fmt.Errorf("no new model") }
	rec = do(t, h, "POST", "/-/reload", "")
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("failing ReloadFunc: status %d", rec.Code)
	}
	if got := s.reg.Counter("reload.errors").Value(); got != 1 {
		t.Fatalf("reload.errors = %d, want 1", got)
	}
	// A failed reload must leave the old snapshot serving.
	if do(t, h, "GET", "/model", "").Code != http.StatusOK {
		t.Fatal("model endpoint broken after failed reload")
	}

	model, catalog := s.currentModel(), s.catalog
	s.ReloadFunc = func() (*core.Model, *trace.FlavorSet, error) { return model, catalog, nil }
	rec = do(t, h, "POST", "/-/reload", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("reload: status %d: %s", rec.Code, rec.Body.String())
	}
	var resp map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp["status"] != "reloaded" {
		t.Fatalf("resp: %v", resp)
	}
	if got := s.reg.Counter("reload.success").Value(); got != 1 {
		t.Fatalf("reload.success = %d, want 1", got)
	}
}

// TestPrecisionSurvivesReload pins the serving precision contract: a
// server configured for the f32 fast path reports it in /model, serves
// deterministically, and keeps serving f32 across hot reloads (the
// rebuilt engine inherits the spec), with response bytes unchanged by
// the swap. A bad precision surfaces as a clean engine error, like a
// bad engine kind.
func TestPrecisionSurvivesReload(t *testing.T) {
	s := freshServer(t)
	s.BatchWindow = 0
	s.Precision = string(core.PrecisionF32)
	h := s.Handler()

	rec := do(t, h, "GET", "/model", "")
	var meta map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &meta); err != nil {
		t.Fatal(err)
	}
	if meta["precision"] != "f32" {
		t.Fatalf("model metadata precision = %v, want f32", meta["precision"])
	}

	body := `{"periods": 24, "seed": 7, "format": "json"}`
	before := do(t, h, "POST", "/generate", body)
	if before.Code != http.StatusOK {
		t.Fatalf("f32 generate: status %d: %s", before.Code, before.Body.String())
	}
	// The engine the first request built must be an f32 decode: its
	// response equals the model's own f32 reference bytes.
	ref := refF32Bytes(t, s, 7, 24)
	if before.Body.String() != ref {
		t.Fatal("served f32 response differs from the model's f32 reference decode")
	}

	s.Reload(s.currentModel(), s.catalog)
	after := do(t, h, "POST", "/generate", body)
	if after.Code != http.StatusOK {
		t.Fatalf("post-reload generate: status %d: %s", after.Code, after.Body.String())
	}
	if after.Body.String() != before.Body.String() {
		t.Fatal("f32 response bytes changed across hot reload")
	}

	s.Precision = "f16"
	s.Reload(s.currentModel(), s.catalog) // drop the cached engine
	rec = do(t, h, "POST", "/generate", body)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("bad precision: status %d, want 500", rec.Code)
	}
}

// refF32Bytes decodes one stream through the model's f32 reference
// path (GenerateBatchF32) and serializes it the way /generate does.
func refF32Bytes(t *testing.T, s *Server, seed int64, periods int) string {
	t.Helper()
	m := s.currentModel()
	start := m.Flavor.HistoryDays * trace.PeriodsPerDay
	w := trace.Window{Start: start, End: start + periods}
	out := m.GenerateBatchF32([]*rng.RNG{rng.New(seed)}, w)
	tr := core.WithCatalog(out[0], s.catalog)
	var buf strings.Builder
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestGenerateRejectsHostileRequests pins the request-validation caps:
// each of these bodies must get a clean 400, never a hung decode loop
// or a panic.
func TestGenerateRejectsHostileRequests(t *testing.T) {
	s := freshServer(t)
	h := s.Handler()
	cases := map[string]string{
		"huge scale":      `{"periods": 4, "scale": 1e300}`,
		"scale above cap": `{"periods": 4, "scale": 1000001}`,
		"negative scale":  `{"periods": 4, "scale": -2}`,
		"negative start":  `{"periods": 4, "start_period": -5}`,
		"absurd start":    `{"periods": 4, "start_period": 999999999999999}`,
		"garbage body":    `{"periods": !!!`,
		"wrong type":      `{"periods": "many"}`,
		"zero periods":    `{"periods": 0}`,
		"huge body": fmt.Sprintf(`{"periods": 4, "format": "%s"}`,
			strings.Repeat("x", 2<<20)),
	}
	for name, body := range cases {
		rec := do(t, h, "POST", "/generate", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, rec.Code)
		}
	}
}
