// Package server exposes a trained generative model as an HTTP service:
// downstream systems (scheduler test rigs, capacity dashboards) request
// synthetic traces on demand instead of shipping model files around.
//
//	GET  /healthz             -> {"status":"ok", ...}
//	GET  /model               -> model metadata
//	POST /generate            -> trace (CSV or JSON), body: GenerateRequest
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/trace"
)

// GenerateRequest is the POST /generate body.
type GenerateRequest struct {
	// Periods is the number of 5-minute periods to generate (required,
	// bounded by MaxPeriods).
	Periods int `json:"periods"`
	// StartPeriod is the absolute period index the window starts at
	// (temporal-feature phase); defaults to the end of the model's
	// training history.
	StartPeriod int `json:"start_period"`
	// Seed selects the sampling stream; 0 draws a fresh seed.
	Seed int64 `json:"seed"`
	// Scale multiplies the arrival rate (the 10x knob); 0 means 1.
	Scale float64 `json:"scale"`
	// Format is "csv" (default) or "json".
	Format string `json:"format"`
}

// Server wraps a trained model with HTTP handlers. It is safe for
// concurrent use: generation state is created per request and the model
// weights are read-only after construction.
type Server struct {
	model   *core.Model
	catalog *trace.FlavorSet
	// MaxPeriods bounds a single request (default: 4 weeks).
	MaxPeriods int

	mu    sync.Mutex
	seeds *rng.RNG // fresh-seed source for requests without a seed

	started time.Time
	served  int64
}

// New builds a server around a trained model and its flavor catalog.
func New(model *core.Model, catalog *trace.FlavorSet) *Server {
	return &Server{
		model:      model,
		catalog:    catalog,
		MaxPeriods: 28 * trace.PeriodsPerDay,
		seeds:      rng.New(time.Now().UnixNano()),
		started:    time.Now(),
	}
}

// Handler returns the HTTP mux for the service.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /model", s.handleModel)
	mux.HandleFunc("POST /generate", s.handleGenerate)
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	served := s.served
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"uptime":  time.Since(s.started).Round(time.Second).String(),
		"served":  served,
		"flavors": s.catalog.K(),
	})
}

func (s *Server) handleModel(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"flavors":        s.model.Flavor.K,
		"history_days":   s.model.Flavor.HistoryDays,
		"lifetime_bins":  s.model.Lifetime.Bins.J(),
		"flavor_params":  s.model.Flavor.Net.NumParams(),
		"hazard_params":  s.model.Lifetime.Net.NumParams(),
		"max_periods":    s.MaxPeriods,
		"period_seconds": trace.PeriodSeconds,
	})
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req GenerateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Periods <= 0 {
		httpError(w, http.StatusBadRequest, "periods must be positive")
		return
	}
	if req.Periods > s.MaxPeriods {
		httpError(w, http.StatusBadRequest, "periods %d exceeds limit %d", req.Periods, s.MaxPeriods)
		return
	}
	if req.Scale < 0 {
		httpError(w, http.StatusBadRequest, "scale must be non-negative")
		return
	}
	start := req.StartPeriod
	if start <= 0 {
		start = s.model.Flavor.HistoryDays * trace.PeriodsPerDay
	}
	seed := req.Seed
	if seed == 0 {
		s.mu.Lock()
		seed = s.seeds.Int63()
		s.mu.Unlock()
	}
	// Copy the model so per-request knobs do not race.
	m := *s.model
	m.RateScale = req.Scale
	window := trace.Window{Start: start, End: start + req.Periods}
	tr := core.WithCatalog(m.Generate(rng.New(seed), window), s.catalog)

	s.mu.Lock()
	s.served++
	s.mu.Unlock()

	w.Header().Set("X-Trace-Seed", fmt.Sprint(seed))
	w.Header().Set("X-Trace-VMs", fmt.Sprint(len(tr.VMs)))
	switch req.Format {
	case "", "csv":
		w.Header().Set("Content-Type", "text/csv")
		if err := tr.WriteCSV(w); err != nil {
			httpError(w, http.StatusInternalServerError, "write: %v", err)
		}
	case "json":
		w.Header().Set("Content-Type", "application/json")
		if err := tr.WriteJSON(w); err != nil {
			httpError(w, http.StatusInternalServerError, "write: %v", err)
		}
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q", req.Format)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
