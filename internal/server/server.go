// Package server exposes a trained generative model as an HTTP service:
// downstream systems (scheduler test rigs, capacity dashboards) request
// synthetic traces on demand instead of shipping model files around.
//
//	GET  /healthz             -> {"status":"ok", ...}
//	GET  /model               -> model metadata
//	GET  /metrics             -> JSON metrics snapshot (per-endpoint
//	                             counters + latency histograms, parallel
//	                             layer stats, training-run metadata)
//	POST /generate            -> trace (CSV or JSON), body: GenerateRequest
//
// Every endpoint runs behind instrumentation middleware that records a
// request counter, an error counter (status >= 400), an in-flight
// gauge, and a latency histogram into the server's obs.Registry (metric
// names in DESIGN.md §7).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fidelity"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/rtrace"
	"repro/internal/trace"
)

// GenerateRequest is the POST /generate body.
type GenerateRequest struct {
	// Periods is the number of 5-minute periods to generate (required,
	// bounded by MaxPeriods).
	Periods int `json:"periods"`
	// StartPeriod is the absolute period index the window starts at
	// (temporal-feature phase); defaults to the end of the model's
	// training history.
	StartPeriod int `json:"start_period"`
	// Seed selects the sampling stream; 0 draws a fresh seed.
	Seed int64 `json:"seed"`
	// Scale multiplies the arrival rate (the 10x knob); 0 means 1.
	Scale float64 `json:"scale"`
	// Format is "csv" (default) or "json".
	Format string `json:"format"`
}

// Server wraps a trained model with HTTP handlers. It is safe for
// concurrent use: the model weights are read-only after construction
// and concurrent /generate requests are coalesced into shared decode
// batches by a core.GenEngine selected from the engine registry via
// EngineKind — serial, batched (DESIGN.md §6.2), or sharded across
// cores (§6.3); per-request seeded RNGs keep every response
// byte-identical to a serial decode of that seed regardless of kind.
//
// The serving snapshot (model + catalog + engine) can be hot-swapped at
// runtime via Reload (wired to POST /-/reload and SIGHUP by cmd/traced)
// without dropping in-flight /generate batches: streams already decoding
// on the old engine run to completion, and requests that were still
// queued transparently retry on the new engine — same seed, so the
// response bytes are unchanged.
type Server struct {
	// MaxPeriods bounds a single request (default: 4 weeks).
	MaxPeriods int
	// MaxScale bounds the request arrival-rate multiplier (default 1e6):
	// an unbounded scale would turn one request body into an effectively
	// unbounded decode loop.
	MaxScale float64
	// MaxStartPeriod bounds the request start period (default: 1000
	// years of periods), keeping temporal-feature arithmetic far from
	// integer overflow on hostile input.
	MaxStartPeriod int
	// MaxBodyBytes bounds the /generate request body (default 1 MiB).
	MaxBodyBytes int64
	// ReloadFunc, if set, is invoked by POST /-/reload to produce a new
	// serving snapshot; on success the server swaps to it atomically.
	ReloadFunc func() (*core.Model, *trace.FlavorSet, error)
	// BatchWindow is how long /generate waits for more requests to join
	// its decode batch (default 2ms; set before the first request).
	BatchWindow time.Duration
	// MaxBatch caps concurrent streams in one decode batch (default 64;
	// set before the first request).
	MaxBatch int
	// EngineKind selects the decode engine from core's registry:
	// "serial", "batched" (default), or "sharded" (set before the first
	// request; also applies to engines rebuilt on hot-reload).
	EngineKind string
	// DecodeShards is the sharded engine's shard count (<= 0 means
	// GOMAXPROCS); ignored by the other kinds.
	DecodeShards int
	// Precision selects the decode numeric width for every engine kind
	// ("" or "f64": bit-exact reference; "f32": the float32 fast path,
	// DESIGN.md §6.4). Set before the first request; like EngineKind it
	// survives hot reloads — engines rebuilt on Reload keep it.
	Precision string
	// TrainInfo optionally carries training-run metadata (cloud, epochs,
	// seed, wall time, journal path) surfaced under "train" at /metrics.
	TrainInfo map[string]any
	// Workload optionally carries the declarative workload-spec summary
	// the server was configured from (cmd/traced -workload-spec),
	// surfaced under "workload" at /metrics. Like TrainInfo it is
	// read-only after startup and survives hot reloads: a reload swaps
	// the model, not the scenario that trained it.
	Workload map[string]any
	// OnTrace, when set (before the first request), observes every
	// successfully served /generate trace together with the request
	// parameters that produced it — the trace record/replay hook
	// (cmd/traced -record wires it to a workload.Recorder). It runs on
	// the request goroutine after generation and must not mutate tr.
	OnTrace func(seed int64, w trace.Window, scale float64, tr *trace.Trace)
	// Tracer, when set (before the first request), threads a request
	// trace through every /generate: the response carries an X-Trace-Id
	// header, the engine records queue/coalesce/decode spans, the
	// handler adds the encode span, and the finished trace lands in the
	// tracer's ring (served by GET /debug/traces) and in the
	// generate.phase.* histograms. nil disables tracing: no IDs, no
	// spans, and a zero-alloc hot path (DESIGN.md §7).
	Tracer *rtrace.Tracer
	// Fidelity, when set (before the first request), streams every
	// served trace through the live drift monitor; its fidelity.*
	// gauges publish through the shared registry and its status under
	// the "fidelity" key of GET /metrics. nil disables monitoring.
	Fidelity *fidelity.Monitor

	// reloading is raised for the duration of a hot reload, flipping
	// GET /readyz to 503 while the snapshot swap is in progress.
	reloading atomic.Bool

	mu      sync.Mutex
	model   *core.Model
	catalog *trace.FlavorSet
	eng     core.GenEngine
	seeds   *rng.RNG // fresh-seed source for requests without a seed

	started time.Time
	served  int64

	reg       *obs.Registry
	inflight  *obs.Gauge
	cancelled *obs.Counter   // requests abandoned via context cancellation
	reloads   *obs.Counter   // successful hot reloads
	reloadErr *obs.Counter   // failed reload attempts
	retried   *obs.Counter   // generates replayed onto a fresh engine
	sampleLat *obs.Histogram // model sampling phase of /generate
	encodeLat *obs.Histogram // serialization phase of /generate

	// Phase-level latency breakdown, fed from finished request traces
	// (populated only while a Tracer is attached).
	queueLat    *obs.Histogram // admission-queue wait
	coalesceLat *obs.Histogram // batch-window / shard-queue coalesce wait
	decodeLat   *obs.Histogram // fleet decode rounds
}

// New builds a server around a trained model and its flavor catalog.
func New(model *core.Model, catalog *trace.FlavorSet) *Server {
	return NewWithRegistry(model, catalog, obs.NewRegistry())
}

// NewWithRegistry builds a server publishing its metrics into an
// existing registry, so callers (cmd/traced) can surface training and
// checkpoint telemetry through the same /metrics snapshot.
func NewWithRegistry(model *core.Model, catalog *trace.FlavorSet, reg *obs.Registry) *Server {
	return &Server{
		model:          model,
		catalog:        catalog,
		MaxPeriods:     28 * trace.PeriodsPerDay,
		MaxScale:       1e6,
		MaxStartPeriod: 1000 * 365 * trace.PeriodsPerDay,
		MaxBodyBytes:   1 << 20,
		BatchWindow:    2 * time.Millisecond,
		MaxBatch:       64,
		seeds:          rng.New(time.Now().UnixNano()),
		started:        time.Now(),
		reg:            reg,
		inflight:       reg.Gauge("http.inflight"),
		cancelled:      reg.Counter("http.cancelled"),
		reloads:        reg.Counter("reload.success"),
		reloadErr:      reg.Counter("reload.errors"),
		retried:        reg.Counter("generate.engine_retries"),
		sampleLat:      reg.Histogram("generate.sample.seconds", obs.LatencyBuckets),
		encodeLat:      reg.Histogram("generate.encode.seconds", obs.LatencyBuckets),
		queueLat:       reg.Histogram("generate.phase.queue.seconds", obs.LatencyBuckets),
		coalesceLat:    reg.Histogram("generate.phase.coalesce.seconds", obs.LatencyBuckets),
		decodeLat:      reg.Histogram("generate.phase.decode.seconds", obs.LatencyBuckets),
	}
}

// Metrics exposes the server's registry (for expvar publication and
// tests).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// snapshot returns a consistent (model, catalog, engine) triple, lazily
// building the configured decode engine for the current model on first
// use (so BatchWindow/MaxBatch/EngineKind/DecodeShards can be tuned
// after New). The same spec is used for engines rebuilt on hot-reload,
// so the engine kind survives Reload; a bad EngineKind surfaces here as
// an error rather than at construction.
func (s *Server) snapshot() (*core.Model, *trace.FlavorSet, core.GenEngine, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.model == nil {
		return nil, nil, nil, errors.New("no model published")
	}
	if s.eng == nil {
		eng, err := core.NewGenEngine(s.model, core.EngineSpec{
			Kind:      core.EngineKind(s.EngineKind),
			Window:    s.BatchWindow,
			MaxBatch:  s.MaxBatch,
			Shards:    s.DecodeShards,
			Obs:       s.reg,
			Precision: core.Precision(s.Precision),
		})
		if err != nil {
			return nil, nil, nil, err
		}
		s.eng = eng
	}
	return s.model, s.catalog, s.eng, nil
}

// currentModel returns the serving model without starting an engine.
func (s *Server) currentModel() *core.Model {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.model
}

// Reload atomically swaps the serving snapshot. In-flight batches on
// the old engine decode to completion before it shuts down; requests
// still queued there fail with core.ErrEngineClosed and are retried by
// handleGenerate against the new engine with their original seed, so no
// request is dropped and no response changes bytes.
func (s *Server) Reload(model *core.Model, catalog *trace.FlavorSet) {
	// /readyz reports not-ready for the whole swap (including the old
	// engine's drain), so load balancers stop routing to a replica
	// mid-reload.
	s.reloading.Store(true)
	defer s.reloading.Store(false)
	s.mu.Lock()
	old := s.eng
	s.model = model
	s.catalog = catalog
	s.eng = nil // next request starts an engine for the new model
	s.mu.Unlock()
	s.reloads.Inc()
	if old != nil {
		old.Close()
	}
}

// Close shuts down the decode engine (if one was started), failing any
// queued requests with core.ErrEngineClosed. Safe to call more than
// once.
func (s *Server) Close() {
	s.mu.Lock()
	eng := s.eng
	s.mu.Unlock()
	if eng != nil {
		eng.Close()
	}
}

// Handler returns the HTTP mux for the service.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealth))
	mux.HandleFunc("GET /readyz", s.instrument("readyz", s.handleReady))
	mux.HandleFunc("GET /model", s.instrument("model", s.handleModel))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("GET /debug/traces", s.instrument("traces", s.handleTraces))
	mux.HandleFunc("POST /generate", s.instrument("generate", s.handleGenerate))
	mux.HandleFunc("POST /-/reload", s.instrument("reload", s.handleReload))
	return mux
}

// statusWriter captures the response status for the error counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with the per-route metrics. The metric
// pointers are resolved once at wiring time so the request path only
// pays atomic updates.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	requests := s.reg.Counter("http.requests." + route)
	errors := s.reg.Counter("http.errors." + route)
	latency := s.reg.Histogram("http.latency_seconds."+route, obs.LatencyBuckets)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.inflight.Add(1)
		defer func() {
			s.inflight.Add(-1)
			latency.Observe(time.Since(start).Seconds())
		}()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		requests.Inc()
		if sw.status >= 400 {
			errors.Inc()
		}
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	served := s.served
	catalog := s.catalog
	s.mu.Unlock()
	flavors := 0
	if catalog != nil {
		flavors = catalog.K()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"uptime":  time.Since(s.started).Round(time.Second).String(),
		"served":  served,
		"flavors": flavors,
	})
}

// handleReady is the readiness probe, distinct from /healthz (which
// answers "is the process up"): ready means "will a /generate land on a
// published snapshot right now". It reports 503 until the first model
// snapshot is published and for the duration of every hot reload.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.reloading.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "not_ready", "reason": "hot reload in progress",
		})
		return
	}
	if s.currentModel() == nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "not_ready", "reason": "no model published",
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

// handleTraces serves the tail of the request-trace ring as JSON:
// ?n=<count> clips to the newest n finished traces (default all
// buffered). With no Tracer attached it reports enabled=false rather
// than 404, so probes can distinguish "off" from "wrong URL".
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 0 {
			httpError(w, http.StatusBadRequest, "bad n %q", v)
			return
		}
		n = parsed
	}
	if s.Tracer == nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"enabled": false, "count": 0, "traces": []rtrace.Finished{},
		})
		return
	}
	traces := s.Tracer.Tail(n)
	if traces == nil {
		traces = []rtrace.Finished{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":  true,
		"count":    s.Tracer.Count(),
		"capacity": s.Tracer.Capacity(),
		"traces":   traces,
	})
}

func (s *Server) modelMeta() map[string]any {
	m := s.currentModel()
	if m == nil {
		return map[string]any{"status": "no model published"}
	}
	precision := s.Precision
	if precision == "" {
		precision = string(core.PrecisionF64)
	}
	return map[string]any{
		"flavors":        m.Flavor.K,
		"history_days":   m.Flavor.HistoryDays,
		"lifetime_bins":  m.Lifetime.Bins.J(),
		"flavor_params":  m.Flavor.Net.NumParams(),
		"hazard_params":  m.Lifetime.Net.NumParams(),
		"max_periods":    s.MaxPeriods,
		"period_seconds": trace.PeriodSeconds,
		"precision":      precision,
	}
}

// handleReload hot-swaps the serving snapshot via ReloadFunc. Reload
// failures leave the current snapshot serving untouched.
func (s *Server) handleReload(w http.ResponseWriter, _ *http.Request) {
	if s.ReloadFunc == nil {
		httpError(w, http.StatusNotImplemented, "no reload source configured")
		return
	}
	model, catalog, err := s.ReloadFunc()
	if err != nil {
		s.reloadErr.Inc()
		httpError(w, http.StatusInternalServerError, "reload: %v", err)
		return
	}
	s.Reload(model, catalog)
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "reloaded",
		"flavors": model.Flavor.K,
	})
}

func (s *Server) handleModel(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.modelMeta())
}

// handleMetrics serves the JSON observability snapshot: the HTTP and
// generation metrics, the parallel-layer counters, the runtime memory
// statistics, and the model / training-run metadata.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	served := s.served
	s.mu.Unlock()
	payload := map[string]any{
		"uptime_s": time.Since(s.started).Seconds(),
		"served":   served,
		"metrics":  s.reg.Snapshot(),
		"par":      par.Snapshot(),
		"mem":      obs.ReadMemStats(),
		"model":    s.modelMeta(),
		"train":    s.TrainInfo,
	}
	if s.Fidelity != nil {
		payload["fidelity"] = s.Fidelity.Snapshot()
	}
	if s.Workload != nil {
		payload["workload"] = s.Workload
	}
	writeJSON(w, http.StatusOK, payload)
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req GenerateRequest
	body := http.MaxBytesReader(w, r.Body, s.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Periods <= 0 {
		httpError(w, http.StatusBadRequest, "periods must be positive")
		return
	}
	if req.Periods > s.MaxPeriods {
		httpError(w, http.StatusBadRequest, "periods %d exceeds limit %d", req.Periods, s.MaxPeriods)
		return
	}
	// The scale knob multiplies the Poisson arrival rate: negative is
	// meaningless, NaN would poison the sampler, and an enormous value
	// would turn one request into an unbounded decode loop.
	if req.Scale < 0 || req.Scale != req.Scale {
		httpError(w, http.StatusBadRequest, "scale must be non-negative")
		return
	}
	if req.Scale > s.MaxScale {
		httpError(w, http.StatusBadRequest, "scale %g exceeds limit %g", req.Scale, s.MaxScale)
		return
	}
	if req.StartPeriod < 0 || req.StartPeriod > s.MaxStartPeriod {
		httpError(w, http.StatusBadRequest, "start_period out of range [0, %d]", s.MaxStartPeriod)
		return
	}
	seed := req.Seed
	if seed == 0 {
		s.mu.Lock()
		seed = s.seeds.Int63()
		s.mu.Unlock()
	}
	// Reject unknown formats before paying for generation.
	switch req.Format {
	case "", "csv", "json":
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q", req.Format)
		return
	}
	// Request tracing: start the trace after validation so the ring only
	// holds requests that reached the pipeline. The trace ID goes out as
	// a response header either way; the engine picks the trace up from
	// the context and records queue/coalesce/decode spans. With no
	// Tracer attached, rt is nil and every call below is a no-op.
	rt := s.Tracer.StartTrace()
	ctx := r.Context()
	if rt != nil {
		w.Header().Set("X-Trace-Id", rt.ID())
		ctx = rtrace.NewContext(ctx, rt)
	}
	// Decode through the shared continuous-batching engine: this request
	// joins whatever batch forms within BatchWindow, but its dedicated
	// seeded RNG keeps the result byte-identical to a serial decode.
	// If a hot reload swaps the engine while this request is still
	// queued, the engine fails it with ErrEngineClosed and the loop
	// replays it on the new engine with a fresh RNG at the same seed —
	// the response bytes do not depend on which engine served it (the
	// trace honestly accumulates one queue span per attempt).
	var tr *trace.Trace
	var catalog *trace.FlavorSet
	var window trace.Window
	sampleStart := time.Now()
	for attempt := 0; ; attempt++ {
		model, cat, eng, err := s.snapshot()
		if err != nil {
			s.Tracer.Finish(rt)
			httpError(w, http.StatusInternalServerError, "engine: %v", err)
			return
		}
		start := req.StartPeriod
		if start <= 0 {
			start = model.Flavor.HistoryDays * trace.PeriodsPerDay
		}
		window = trace.Window{Start: start, End: start + req.Periods}
		tr, err = eng.Generate(ctx, rng.New(seed), window, req.Scale)
		if err == nil {
			catalog = cat
			break
		}
		if errors.Is(err, core.ErrEngineClosed) && attempt < 8 {
			s.retried.Inc()
			continue
		}
		s.sampleLat.Observe(time.Since(sampleStart).Seconds())
		s.Tracer.Finish(rt)
		if r.Context().Err() != nil {
			// The client went away mid-decode; the engine aborted the
			// stream and there is nobody left to answer.
			s.cancelled.Inc()
			return
		}
		httpError(w, http.StatusServiceUnavailable, "generate: %v", err)
		return
	}
	s.sampleLat.Observe(time.Since(sampleStart).Seconds())
	tr = core.WithCatalog(tr, catalog)

	s.mu.Lock()
	s.served++
	s.mu.Unlock()

	// Fidelity: fold the served trace into the drift window before
	// encoding (the monitor only reads; the trace is immutable from
	// here). The request's scale normalizes the expected arrival rate.
	s.Fidelity.ObserveTrace(tr, req.Scale)

	// Record/replay hook: hand the served trace and the parameters that
	// reproduce it to the recorder before encoding, so a recorded
	// request is replayable even if the client disconnects mid-encode.
	if s.OnTrace != nil {
		s.OnTrace(seed, window, req.Scale, tr)
	}

	w.Header().Set("X-Trace-Seed", fmt.Sprint(seed))
	w.Header().Set("X-Trace-VMs", fmt.Sprint(len(tr.VMs)))
	encodeStart := time.Now()
	switch req.Format {
	case "", "csv":
		w.Header().Set("Content-Type", "text/csv")
		if err := tr.WriteCSV(w); err != nil {
			httpError(w, http.StatusInternalServerError, "write: %v", err)
		}
	case "json":
		w.Header().Set("Content-Type", "application/json")
		if err := tr.WriteJSON(w); err != nil {
			httpError(w, http.StatusInternalServerError, "write: %v", err)
		}
	}
	encodeDur := time.Since(encodeStart)
	s.encodeLat.Observe(encodeDur.Seconds())
	if rt != nil {
		rt.Add("encode", encodeStart, encodeDur)
		s.observePhases(s.Tracer.Finish(rt))
	}
}

// observePhases folds a finished request trace's engine spans into the
// phase-level latency histograms (encode is observed directly by
// handleGenerate, traced or not).
func (s *Server) observePhases(f rtrace.Finished) {
	for _, sp := range f.Spans {
		secs := time.Duration(sp.DurNS).Seconds()
		switch sp.Name {
		case "queue":
			s.queueLat.Observe(secs)
		case "coalesce":
			s.coalesceLat.Observe(secs)
		case "decode":
			s.decodeLat.Observe(secs)
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
