// Package server exposes a trained generative model as an HTTP service:
// downstream systems (scheduler test rigs, capacity dashboards) request
// synthetic traces on demand instead of shipping model files around.
//
//	GET  /healthz             -> {"status":"ok", ...}
//	GET  /model               -> model metadata
//	GET  /metrics             -> JSON metrics snapshot (per-endpoint
//	                             counters + latency histograms, parallel
//	                             layer stats, training-run metadata)
//	POST /generate            -> trace (CSV or JSON), body: GenerateRequest
//
// Every endpoint runs behind instrumentation middleware that records a
// request counter, an error counter (status >= 400), an in-flight
// gauge, and a latency histogram into the server's obs.Registry (metric
// names in DESIGN.md §7).
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/trace"
)

// GenerateRequest is the POST /generate body.
type GenerateRequest struct {
	// Periods is the number of 5-minute periods to generate (required,
	// bounded by MaxPeriods).
	Periods int `json:"periods"`
	// StartPeriod is the absolute period index the window starts at
	// (temporal-feature phase); defaults to the end of the model's
	// training history.
	StartPeriod int `json:"start_period"`
	// Seed selects the sampling stream; 0 draws a fresh seed.
	Seed int64 `json:"seed"`
	// Scale multiplies the arrival rate (the 10x knob); 0 means 1.
	Scale float64 `json:"scale"`
	// Format is "csv" (default) or "json".
	Format string `json:"format"`
}

// Server wraps a trained model with HTTP handlers. It is safe for
// concurrent use: the model weights are read-only after construction
// and concurrent /generate requests are coalesced into shared decode
// batches by a core.Engine (DESIGN.md §6.2); per-request seeded RNGs
// keep every response byte-identical to a serial decode of that seed.
type Server struct {
	model   *core.Model
	catalog *trace.FlavorSet
	// MaxPeriods bounds a single request (default: 4 weeks).
	MaxPeriods int
	// BatchWindow is how long /generate waits for more requests to join
	// its decode batch (default 2ms; set before the first request).
	BatchWindow time.Duration
	// MaxBatch caps concurrent streams in one decode batch (default 64;
	// set before the first request).
	MaxBatch int
	// TrainInfo optionally carries training-run metadata (cloud, epochs,
	// seed, wall time, journal path) surfaced under "train" at /metrics.
	TrainInfo map[string]any

	mu    sync.Mutex
	seeds *rng.RNG // fresh-seed source for requests without a seed
	eng   *core.Engine

	started time.Time
	served  int64

	reg       *obs.Registry
	inflight  *obs.Gauge
	cancelled *obs.Counter   // requests abandoned via context cancellation
	sampleLat *obs.Histogram // model sampling phase of /generate
	encodeLat *obs.Histogram // serialization phase of /generate
}

// New builds a server around a trained model and its flavor catalog.
func New(model *core.Model, catalog *trace.FlavorSet) *Server {
	reg := obs.NewRegistry()
	return &Server{
		model:       model,
		catalog:     catalog,
		MaxPeriods:  28 * trace.PeriodsPerDay,
		BatchWindow: 2 * time.Millisecond,
		MaxBatch:    64,
		seeds:       rng.New(time.Now().UnixNano()),
		started:     time.Now(),
		reg:         reg,
		inflight:    reg.Gauge("http.inflight"),
		cancelled:   reg.Counter("http.cancelled"),
		sampleLat:   reg.Histogram("generate.sample.seconds", obs.LatencyBuckets),
		encodeLat:   reg.Histogram("generate.encode.seconds", obs.LatencyBuckets),
	}
}

// Metrics exposes the server's registry (for expvar publication and
// tests).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// engine lazily starts the shared continuous-batching decode engine on
// the first /generate, so BatchWindow/MaxBatch can be tuned after New.
func (s *Server) engine() *core.Engine {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.eng == nil {
		s.eng = core.NewEngine(s.model, s.BatchWindow, s.MaxBatch)
	}
	return s.eng
}

// Close shuts down the decode engine (if one was started), failing any
// queued requests with core.ErrEngineClosed. Safe to call more than
// once.
func (s *Server) Close() {
	s.mu.Lock()
	eng := s.eng
	s.mu.Unlock()
	if eng != nil {
		eng.Close()
	}
}

// Handler returns the HTTP mux for the service.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealth))
	mux.HandleFunc("GET /model", s.instrument("model", s.handleModel))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("POST /generate", s.instrument("generate", s.handleGenerate))
	return mux
}

// statusWriter captures the response status for the error counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with the per-route metrics. The metric
// pointers are resolved once at wiring time so the request path only
// pays atomic updates.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	requests := s.reg.Counter("http.requests." + route)
	errors := s.reg.Counter("http.errors." + route)
	latency := s.reg.Histogram("http.latency_seconds."+route, obs.LatencyBuckets)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.inflight.Add(1)
		defer func() {
			s.inflight.Add(-1)
			latency.Observe(time.Since(start).Seconds())
		}()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		requests.Inc()
		if sw.status >= 400 {
			errors.Inc()
		}
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	served := s.served
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"uptime":  time.Since(s.started).Round(time.Second).String(),
		"served":  served,
		"flavors": s.catalog.K(),
	})
}

func (s *Server) modelMeta() map[string]any {
	return map[string]any{
		"flavors":        s.model.Flavor.K,
		"history_days":   s.model.Flavor.HistoryDays,
		"lifetime_bins":  s.model.Lifetime.Bins.J(),
		"flavor_params":  s.model.Flavor.Net.NumParams(),
		"hazard_params":  s.model.Lifetime.Net.NumParams(),
		"max_periods":    s.MaxPeriods,
		"period_seconds": trace.PeriodSeconds,
	}
}

func (s *Server) handleModel(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.modelMeta())
}

// handleMetrics serves the JSON observability snapshot: the HTTP and
// generation metrics, the parallel-layer counters, the runtime memory
// statistics, and the model / training-run metadata.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	served := s.served
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_s": time.Since(s.started).Seconds(),
		"served":   served,
		"metrics":  s.reg.Snapshot(),
		"par":      par.Snapshot(),
		"mem":      obs.ReadMemStats(),
		"model":    s.modelMeta(),
		"train":    s.TrainInfo,
	})
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	var req GenerateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Periods <= 0 {
		httpError(w, http.StatusBadRequest, "periods must be positive")
		return
	}
	if req.Periods > s.MaxPeriods {
		httpError(w, http.StatusBadRequest, "periods %d exceeds limit %d", req.Periods, s.MaxPeriods)
		return
	}
	if req.Scale < 0 {
		httpError(w, http.StatusBadRequest, "scale must be non-negative")
		return
	}
	start := req.StartPeriod
	if start <= 0 {
		start = s.model.Flavor.HistoryDays * trace.PeriodsPerDay
	}
	seed := req.Seed
	if seed == 0 {
		s.mu.Lock()
		seed = s.seeds.Int63()
		s.mu.Unlock()
	}
	// Reject unknown formats before paying for generation.
	switch req.Format {
	case "", "csv", "json":
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q", req.Format)
		return
	}
	// Decode through the shared continuous-batching engine: this request
	// joins whatever batch forms within BatchWindow, but its dedicated
	// seeded RNG keeps the result byte-identical to a serial decode.
	window := trace.Window{Start: start, End: start + req.Periods}
	sampleStart := time.Now()
	tr, err := s.engine().Generate(r.Context(), rng.New(seed), window, req.Scale)
	s.sampleLat.Observe(time.Since(sampleStart).Seconds())
	if err != nil {
		if r.Context().Err() != nil {
			// The client went away mid-decode; the engine aborted the
			// stream and there is nobody left to answer.
			s.cancelled.Inc()
			return
		}
		httpError(w, http.StatusServiceUnavailable, "generate: %v", err)
		return
	}
	tr = core.WithCatalog(tr, s.catalog)

	s.mu.Lock()
	s.served++
	s.mu.Unlock()

	w.Header().Set("X-Trace-Seed", fmt.Sprint(seed))
	w.Header().Set("X-Trace-VMs", fmt.Sprint(len(tr.VMs)))
	encodeStart := time.Now()
	switch req.Format {
	case "", "csv":
		w.Header().Set("Content-Type", "text/csv")
		if err := tr.WriteCSV(w); err != nil {
			httpError(w, http.StatusInternalServerError, "write: %v", err)
		}
	case "json":
		w.Header().Set("Content-Type", "application/json")
		if err := tr.WriteJSON(w); err != nil {
			httpError(w, http.StatusInternalServerError, "write: %v", err)
		}
	}
	s.encodeLat.Observe(time.Since(encodeStart).Seconds())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
