package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/survival"
	"repro/internal/synth"
	"repro/internal/trace"
)

var (
	srvOnce sync.Once
	srv     *Server
)

// testServer trains a tiny model once (a few seconds) and shares it.
func testServer(t testing.TB) *Server {
	t.Helper()
	srvOnce.Do(func() {
		cfg := synth.AzureLike()
		cfg.Days = 2
		cfg.Users = 40
		cfg.BaseRate = 1.5
		full := cfg.Generate(3)
		train := full.Slice(trace.Window{Start: 0, End: full.Periods}, 0)
		m, err := core.TrainModel(train, core.ModelOptions{
			Bins: survival.PaperBins(),
			Train: core.TrainConfig{
				Hidden: 12, Layers: 1, SeqLen: 48, BatchSize: 8, Epochs: 5, Seed: 1,
			},
		})
		if err != nil {
			panic(err)
		}
		srv = New(m, cfg.Flavors)
	})
	return srv
}

func do(t *testing.T, h http.Handler, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	h := testServer(t).Handler()
	rec := do(t, h, "GET", "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp["status"] != "ok" || resp["flavors"].(float64) != 16 {
		t.Fatalf("resp: %v", resp)
	}
}

func TestModelInfo(t *testing.T) {
	h := testServer(t).Handler()
	rec := do(t, h, "GET", "/model", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp["lifetime_bins"].(float64) != 47 {
		t.Fatalf("resp: %v", resp)
	}
}

func TestGenerateCSV(t *testing.T) {
	h := testServer(t).Handler()
	rec := do(t, h, "POST", "/generate", `{"periods": 48, "seed": 7}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/csv" {
		t.Fatalf("content type %q", ct)
	}
	if rec.Header().Get("X-Trace-Seed") != "7" {
		t.Fatalf("seed header %q", rec.Header().Get("X-Trace-Seed"))
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if lines[0] != "id,user,flavor,start_period,duration_s,censored" {
		t.Fatalf("header: %q", lines[0])
	}
}

func TestGenerateJSONAndDeterminism(t *testing.T) {
	h := testServer(t).Handler()
	a := do(t, h, "POST", "/generate", `{"periods": 24, "seed": 9, "format": "json"}`)
	b := do(t, h, "POST", "/generate", `{"periods": 24, "seed": 9, "format": "json"}`)
	if a.Code != http.StatusOK || b.Code != http.StatusOK {
		t.Fatalf("status %d / %d", a.Code, b.Code)
	}
	if a.Body.String() != b.Body.String() {
		t.Fatal("same seed must generate identical traces")
	}
	tr, err := trace.ReadJSON(strings.NewReader(a.Body.String()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Periods != 24 {
		t.Fatalf("periods %d", tr.Periods)
	}
}

func TestGenerateFreshSeedsDiffer(t *testing.T) {
	h := testServer(t).Handler()
	a := do(t, h, "POST", "/generate", `{"periods": 24, "format": "json"}`)
	b := do(t, h, "POST", "/generate", `{"periods": 24, "format": "json"}`)
	if a.Header().Get("X-Trace-Seed") == b.Header().Get("X-Trace-Seed") {
		t.Fatal("fresh seeds should differ")
	}
}

func TestGenerateValidation(t *testing.T) {
	h := testServer(t).Handler()
	cases := []struct {
		body string
		want int
	}{
		{`{`, http.StatusBadRequest},
		{`{"periods": 0}`, http.StatusBadRequest},
		{`{"periods": 99999999}`, http.StatusBadRequest},
		{`{"periods": 10, "scale": -1}`, http.StatusBadRequest},
		{`{"periods": 10, "format": "xml"}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		rec := do(t, h, "POST", "/generate", c.body)
		if rec.Code != c.want {
			t.Errorf("body %q: status %d, want %d", c.body, rec.Code, c.want)
		}
	}
}

func TestGenerateScale(t *testing.T) {
	h := testServer(t).Handler()
	small := do(t, h, "POST", "/generate", `{"periods": 96, "seed": 11, "scale": 1}`)
	big := do(t, h, "POST", "/generate", `{"periods": 96, "seed": 11, "scale": 8}`)
	ns := strings.Count(small.Body.String(), "\n")
	nb := strings.Count(big.Body.String(), "\n")
	if nb < ns*3 {
		t.Fatalf("scale 8 generated %d rows vs %d at scale 1", nb, ns)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	h := testServer(t).Handler()
	rec := do(t, h, "GET", "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var resp struct {
		UptimeS float64 `json:"uptime_s"`
		Served  float64 `json:"served"`
		Metrics struct {
			Counters   map[string]int64 `json:"counters"`
			Gauges     map[string]int64 `json:"gauges"`
			Histograms map[string]struct {
				Count  int64     `json:"count"`
				Sum    float64   `json:"sum"`
				Bounds []float64 `json:"bounds"`
				Counts []int64   `json:"counts"`
			} `json:"histograms"`
		} `json:"metrics"`
		Par   map[string]int64   `json:"par"`
		Mem   map[string]float64 `json:"mem"`
		Model map[string]any     `json:"model"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("metrics response is not valid JSON: %v", err)
	}
	if resp.UptimeS < 0 {
		t.Errorf("uptime_s = %v", resp.UptimeS)
	}
	if resp.Model["flavors"].(float64) != 16 {
		t.Errorf("model metadata missing from /metrics: %v", resp.Model)
	}
	if _, ok := resp.Par["tasks"]; !ok {
		t.Errorf("par stats missing from /metrics: %v", resp.Par)
	}
	if v, ok := resp.Mem["heap_in_use_bytes"]; !ok || v <= 0 {
		t.Errorf("mem stats missing from /metrics: %v", resp.Mem)
	}
	// The snapshot is taken while the /metrics request itself is still
	// in flight, so the gauge reads exactly 1 in its own response.
	if g, ok := resp.Metrics.Gauges["http.inflight"]; !ok || g != 1 {
		t.Errorf("http.inflight = %d (present=%v), want 1", g, ok)
	}
	for _, name := range []string{"http.latency_seconds.metrics", "generate.sample.seconds"} {
		hist, ok := resp.Metrics.Histograms[name]
		if !ok {
			t.Errorf("histogram %q missing", name)
			continue
		}
		if len(hist.Counts) != len(hist.Bounds)+1 {
			t.Errorf("%s: %d counts for %d bounds", name, len(hist.Counts), len(hist.Bounds))
		}
	}
}

// TestMetricsCountersAdvance drives a mix of successful and failing
// requests and asserts the middleware counters and latency histograms
// actually move. The fixture is shared across tests, so everything is
// checked as a before/after delta.
func TestMetricsCountersAdvance(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	before := s.Metrics().Snapshot()

	for i := 0; i < 2; i++ {
		if rec := do(t, h, "POST", "/generate", `{"periods": 12, "seed": 5}`); rec.Code != http.StatusOK {
			t.Fatalf("generate status %d: %s", rec.Code, rec.Body.String())
		}
	}
	for _, body := range []string{`{`, `{"periods": 0}`, `{"periods": 10, "format": "xml"}`} {
		if rec := do(t, h, "POST", "/generate", body); rec.Code != http.StatusBadRequest {
			t.Fatalf("body %q: status %d", body, rec.Code)
		}
	}
	do(t, h, "GET", "/healthz", "")

	after := s.Metrics().Snapshot()
	if got := after.Counters["http.requests.generate"] - before.Counters["http.requests.generate"]; got != 5 {
		t.Errorf("http.requests.generate delta = %d, want 5", got)
	}
	if got := after.Counters["http.errors.generate"] - before.Counters["http.errors.generate"]; got != 3 {
		t.Errorf("http.errors.generate delta = %d, want 3", got)
	}
	if got := after.Counters["http.requests.healthz"] - before.Counters["http.requests.healthz"]; got != 1 {
		t.Errorf("http.requests.healthz delta = %d, want 1", got)
	}
	if got := after.Counters["http.errors.healthz"] - before.Counters["http.errors.healthz"]; got != 0 {
		t.Errorf("http.errors.healthz delta = %d, want 0", got)
	}
	lat := func(s obs.Snapshot) int64 { return s.Histograms["http.latency_seconds.generate"].Count }
	if got := lat(after) - lat(before); got != 5 {
		t.Errorf("latency histogram count delta = %d, want 5 (errors included)", got)
	}
	// Phase histograms only cover requests that reached generation.
	samp := func(s obs.Snapshot) int64 { return s.Histograms["generate.sample.seconds"].Count }
	if got := samp(after) - samp(before); got != 2 {
		t.Errorf("sample phase histogram delta = %d, want 2", got)
	}
	if after.Gauges["http.inflight"] != 0 {
		t.Errorf("http.inflight = %d after requests drained", after.Gauges["http.inflight"])
	}
}

// TestGenerateConcurrentCoalesced fires many concurrent POST /generate
// requests so they coalesce into shared decode batches, then checks
// each response byte-for-byte against a serial decode of its seed —
// the server-level version of the engine determinism contract. Runs
// under -race via scripts/check.sh.
func TestGenerateConcurrentCoalesced(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	const n = 12
	bodies := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"periods": 24, "seed": %d, "format": "json"}`, 1000+i)
			rec := do(t, h, "POST", "/generate", body)
			if rec.Code != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, rec.Code, rec.Body.String())
				return
			}
			bodies[i] = rec.Body.String()
		}(i)
	}
	wg.Wait()
	start := s.model.Flavor.HistoryDays * trace.PeriodsPerDay
	w := trace.Window{Start: start, End: start + 24}
	for i := 0; i < n; i++ {
		tr := core.WithCatalog(s.model.Generate(rng.New(int64(1000+i)), w), s.catalog)
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if bodies[i] != buf.String() {
			t.Fatalf("request %d: coalesced response differs from serial decode", i)
		}
	}
}

// TestGenerateCancelledCounter submits a request whose context is
// already cancelled: the engine aborts the stream, no response body is
// written, and the abandonment lands on the http.cancelled counter
// rather than the error counter.
func TestGenerateCancelledCounter(t *testing.T) {
	s := testServer(t)
	h := s.Handler()
	before := s.Metrics().Snapshot()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/generate", strings.NewReader(`{"periods": 24, "seed": 4}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	after := s.Metrics().Snapshot()
	if got := after.Counters["http.cancelled"] - before.Counters["http.cancelled"]; got != 1 {
		t.Errorf("http.cancelled delta = %d, want 1", got)
	}
	if got := after.Counters["http.errors.generate"] - before.Counters["http.errors.generate"]; got != 0 {
		t.Errorf("http.errors.generate delta = %d, want 0 (cancellation is not a server error)", got)
	}
	if rec.Body.Len() != 0 {
		t.Errorf("cancelled request wrote %d body bytes, want none", rec.Body.Len())
	}
}

// TestMetricsShardGauges serves /generate through the sharded engine
// and asserts the per-shard gauge families surface in GET /metrics:
// every decode.shard_occupancy.<k> / decode.streams_per_shard.<k>
// gauge present, assignments totalling the served requests, and
// occupancy drained back to zero.
func TestMetricsShardGauges(t *testing.T) {
	shared := testServer(t)
	s := NewWithRegistry(shared.currentModel(), shared.catalog, obs.NewRegistry())
	const shards = 2
	s.EngineKind = string(core.EngineSharded)
	s.DecodeShards = shards
	s.BatchWindow = 0
	defer s.Close()
	h := s.Handler()

	const n = 8
	for i := 0; i < n; i++ {
		body := fmt.Sprintf(`{"periods": 12, "seed": %d}`, 300+i)
		if rec := do(t, h, "POST", "/generate", body); rec.Code != http.StatusOK {
			t.Fatalf("generate %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}

	rec := do(t, h, "GET", "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	var resp struct {
		Metrics struct {
			Gauges map[string]int64 `json:"gauges"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	var assigned int64
	for k := 0; k < shards; k++ {
		occName := fmt.Sprintf("decode.shard_occupancy.%d", k)
		occ, ok := resp.Metrics.Gauges[occName]
		if !ok {
			t.Fatalf("gauge %q missing from /metrics", occName)
		}
		if occ != 0 {
			t.Errorf("%s = %d with no in-flight requests, want 0", occName, occ)
		}
		asnName := fmt.Sprintf("decode.streams_per_shard.%d", k)
		asn, ok := resp.Metrics.Gauges[asnName]
		if !ok {
			t.Fatalf("gauge %q missing from /metrics", asnName)
		}
		assigned += asn
	}
	if assigned != n {
		t.Errorf("streams_per_shard total = %d, want %d", assigned, n)
	}
}

// TestShardedServerMatchesBatched pins engine-kind transparency at the
// HTTP layer: the same (seed, periods) request served by a sharded
// server returns byte-identical responses to the default batched one.
func TestShardedServerMatchesBatched(t *testing.T) {
	shared := testServer(t)
	s := NewWithRegistry(shared.currentModel(), shared.catalog, obs.NewRegistry())
	s.EngineKind = string(core.EngineSharded)
	s.DecodeShards = 4
	defer s.Close()
	body := `{"periods": 24, "seed": 77, "format": "json"}`
	a := do(t, shared.Handler(), "POST", "/generate", body)
	b := do(t, s.Handler(), "POST", "/generate", body)
	if a.Code != http.StatusOK || b.Code != http.StatusOK {
		t.Fatalf("status %d / %d", a.Code, b.Code)
	}
	if a.Body.String() != b.Body.String() {
		t.Fatal("sharded server response differs from batched server for the same seed")
	}
}

// TestBadEngineKind checks a misconfigured engine kind surfaces as a
// clean 500 on /generate, not a panic or a hang.
func TestBadEngineKind(t *testing.T) {
	shared := testServer(t)
	s := NewWithRegistry(shared.currentModel(), shared.catalog, obs.NewRegistry())
	s.EngineKind = "warp-drive"
	defer s.Close()
	rec := do(t, s.Handler(), "POST", "/generate", `{"periods": 12, "seed": 1}`)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("bad engine kind: status %d, want 500: %s", rec.Code, rec.Body.String())
	}
}

func TestMethodRouting(t *testing.T) {
	h := testServer(t).Handler()
	if rec := do(t, h, "GET", "/generate", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /generate status %d", rec.Code)
	}
	if rec := do(t, h, "POST", "/healthz", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz status %d", rec.Code)
	}
}
