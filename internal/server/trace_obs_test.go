package server

import (
	"encoding/json"
	"net/http"
	"regexp"
	"testing"
	"time"

	"repro/internal/fidelity"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/rtrace"
	"repro/internal/survival"
	"repro/internal/trace"
)

// tracedServer builds a private server around the shared trained model
// with request tracing (and optionally fidelity monitoring) attached.
func tracedServer(t *testing.T, withFidelity bool) (*Server, *obs.Registry) {
	t.Helper()
	base := testServer(t)
	reg := obs.NewRegistry()
	s := NewWithRegistry(base.currentModel(), base.catalog, reg)
	s.EngineKind = "sharded"
	s.DecodeShards = 2
	s.BatchWindow = time.Millisecond
	s.Tracer = rtrace.NewTracer(16)
	if withFidelity {
		ref := fidelity.ReferenceFromTrace(
			base.currentModel().Generate(rng.New(12345), trace.Window{Start: 0, End: 2 * trace.PeriodsPerDay}),
			survival.PaperBins().Edges,
		)
		s.Fidelity = fidelity.NewMonitor(ref, fidelity.Config{Window: 8}, reg)
	}
	t.Cleanup(s.Close)
	return s, reg
}

type tracesResponse struct {
	Enabled  bool              `json:"enabled"`
	Count    uint64            `json:"count"`
	Capacity int               `json:"capacity"`
	Traces   []rtrace.Finished `json:"traces"`
}

// TestGenerateTracedEndToEnd is the ISSUE acceptance path: a traced
// /generate returns an X-Trace-Id, the trace is retrievable from
// /debug/traces with the full queue/coalesce/decode/encode span tree,
// the span tree accounts for >= 95% of the measured wall time, and the
// response bytes are identical to an untraced server's.
func TestGenerateTracedEndToEnd(t *testing.T) {
	s, _ := tracedServer(t, false)
	h := s.Handler()
	const body = `{"periods": 288, "seed": 41, "format": "json"}`

	rec := do(t, h, "POST", "/generate", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	id := rec.Header().Get("X-Trace-Id")
	if !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(id) {
		t.Fatalf("X-Trace-Id = %q, want 16 hex digits", id)
	}

	// Byte-identity across tracing: the shared untraced server (batched
	// engine, no tracer) must produce the same bytes for the same seed.
	plain := do(t, testServer(t).Handler(), "POST", "/generate", body)
	if plain.Code != http.StatusOK {
		t.Fatalf("untraced status %d", plain.Code)
	}
	if plain.Header().Get("X-Trace-Id") != "" {
		t.Fatal("untraced server must not emit X-Trace-Id")
	}
	if rec.Body.String() != plain.Body.String() {
		t.Fatal("traced response differs from untraced (tracing is not read-only)")
	}

	// The finished trace is in the ring, spans tile the request.
	tr := do(t, h, "GET", "/debug/traces?n=5", "")
	var resp tracesResponse
	if err := json.Unmarshal(tr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Enabled || resp.Count < 1 || resp.Capacity != 16 {
		t.Fatalf("traces response: %+v", resp)
	}
	var fin *rtrace.Finished
	for i := range resp.Traces {
		if resp.Traces[i].ID == id {
			fin = &resp.Traces[i]
		}
	}
	if fin == nil {
		t.Fatalf("trace %s not found in /debug/traces tail", id)
	}
	for _, name := range []string{"queue", "coalesce", "decode", "encode"} {
		if _, ok := fin.SpanDur(name); !ok {
			t.Fatalf("span %q missing from %+v", name, fin.Spans)
		}
	}
	if d, _ := fin.SpanDur("decode"); d <= 0 {
		t.Fatal("decode span has zero duration")
	}
	if fin.Shard < 0 || fin.Shard >= 2 {
		t.Fatalf("shard = %d, want in [0,2)", fin.Shard)
	}
	if cov := fin.Coverage(); cov < 0.95 {
		t.Fatalf("span tree covers %.1f%% of wall time, want >= 95%%", 100*cov)
	}
}

// TestPhaseHistogramsOnMetrics: the traced request populates the
// generate.phase.* histograms, and every histogram snapshot carries
// derived p50/p90/p99.
func TestPhaseHistogramsOnMetrics(t *testing.T) {
	s, _ := tracedServer(t, false)
	h := s.Handler()
	for i := 0; i < 3; i++ {
		if rec := do(t, h, "POST", "/generate", `{"periods": 48, "seed": 21}`); rec.Code != http.StatusOK {
			t.Fatalf("status %d", rec.Code)
		}
	}
	rec := do(t, h, "GET", "/metrics", "")
	var resp struct {
		Metrics obs.Snapshot `json:"metrics"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"generate.phase.queue.seconds",
		"generate.phase.coalesce.seconds",
		"generate.phase.decode.seconds",
		"generate.encode.seconds",
	} {
		hs, ok := resp.Metrics.Histograms[name]
		if !ok {
			t.Fatalf("histogram %q missing from /metrics", name)
		}
		if hs.Count != 3 {
			t.Fatalf("%s count = %d, want 3", name, hs.Count)
		}
		if hs.P50 > hs.P90 || hs.P90 > hs.P99 {
			t.Fatalf("%s quantiles not monotone: %+v", name, hs)
		}
	}
}

// TestDebugTracesDisabled: with no tracer the endpoint reports
// enabled=false (not 404) and /generate omits the header.
func TestDebugTracesDisabled(t *testing.T) {
	h := testServer(t).Handler()
	rec := do(t, h, "GET", "/debug/traces", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp tracesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Enabled || len(resp.Traces) != 0 {
		t.Fatalf("disabled tracer response: %+v", resp)
	}
	if rec := do(t, h, "GET", "/debug/traces?n=bogus", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad n: status %d, want 400", rec.Code)
	}
}

// TestReadyz: not-ready before the first snapshot, ready after, and
// not-ready again while a reload is in progress.
func TestReadyz(t *testing.T) {
	base := testServer(t)
	s := NewWithRegistry(nil, nil, obs.NewRegistry())
	t.Cleanup(s.Close)
	h := s.Handler()

	rec := do(t, h, "GET", "/readyz", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("pre-publish readyz = %d, want 503", rec.Code)
	}
	// Liveness stays green while readiness is red.
	if rec := do(t, h, "GET", "/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", rec.Code)
	}
	// /generate on an unpublished server is a clean 500, not a panic.
	if rec := do(t, h, "POST", "/generate", `{"periods": 12}`); rec.Code != http.StatusInternalServerError {
		t.Fatalf("generate without model = %d, want 500", rec.Code)
	}

	s.Reload(base.currentModel(), base.catalog)
	if rec := do(t, h, "GET", "/readyz", ""); rec.Code != http.StatusOK {
		t.Fatalf("post-publish readyz = %d, want 200", rec.Code)
	}
	if rec := do(t, h, "POST", "/generate", `{"periods": 12, "seed": 5}`); rec.Code != http.StatusOK {
		t.Fatalf("generate after publish = %d: %s", rec.Code, rec.Body.String())
	}

	// Mid-reload the probe flips back to 503.
	s.reloading.Store(true)
	if rec := do(t, h, "GET", "/readyz", ""); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("mid-reload readyz = %d, want 503", rec.Code)
	}
	s.reloading.Store(false)
}

// TestFidelityOnMetrics: served traffic flows into the drift monitor
// and surfaces on /metrics as both the "fidelity" status block and the
// fidelity.* gauges in the shared registry.
func TestFidelityOnMetrics(t *testing.T) {
	s, reg := tracedServer(t, true)
	h := s.Handler()
	for i := 0; i < 2; i++ {
		if rec := do(t, h, "POST", "/generate", `{"periods": 288, "seed": 61}`); rec.Code != http.StatusOK {
			t.Fatalf("status %d", rec.Code)
		}
	}
	rec := do(t, h, "GET", "/metrics", "")
	var resp struct {
		Fidelity *fidelity.Status `json:"fidelity"`
		Metrics  obs.Snapshot     `json:"metrics"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Fidelity == nil {
		t.Fatal("/metrics missing fidelity block")
	}
	if resp.Fidelity.WindowTraces != 2 {
		t.Fatalf("fidelity window traces = %d, want 2", resp.Fidelity.WindowTraces)
	}
	if resp.Fidelity.FlavorNLL <= 0 {
		t.Fatalf("fidelity NLL = %v, want > 0", resp.Fidelity.FlavorNLL)
	}
	for _, g := range []string{"fidelity.flavor_nll", "fidelity.flavor_kl", "fidelity.survival_mse", "fidelity.arrival_deviance"} {
		if _, ok := resp.Metrics.FloatGauges[g]; !ok {
			t.Fatalf("gauge %q missing from /metrics", g)
		}
	}
	if _, ok := resp.Metrics.Gauges["fidelity.drift"]; !ok {
		t.Fatal("fidelity.drift gauge missing from /metrics")
	}
	if got := reg.Counter("fidelity.observed_traces").Value(); got != 2 {
		t.Fatalf("observed_traces = %d, want 2", got)
	}

	// A fidelity-disabled server serves /metrics without the block.
	plain := do(t, testServer(t).Handler(), "GET", "/metrics", "")
	var plainResp map[string]json.RawMessage
	if err := json.Unmarshal(plain.Body.Bytes(), &plainResp); err != nil {
		t.Fatal(err)
	}
	if _, ok := plainResp["fidelity"]; ok {
		t.Fatal("fidelity block present on a monitor-less server")
	}
}
