package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestWorkloadSpecSurvivesHotReloadUnderLoad extends the
// TestHotReloadUnderLoad family to the declarative workload layer: a
// server configured from a three-cohort spec (catalog, /metrics
// summary, record sink) is hammered with concurrent /generate load
// while hot reloads rebuild the same spec-driven scenario through
// ReloadFunc. Zero requests may drop, response bytes may not change,
// the spec summary must still be served afterwards, and every recorded
// trace must be byte-identical to the response it mirrors — across
// both sides of every swap. Run with -race via scripts/check.sh.
func TestWorkloadSpecSurvivesHotReloadUnderLoad(t *testing.T) {
	spec := workload.Preset("mixed")
	cfg, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}

	s := freshServer(t)
	s.BatchWindow = 0
	// The spec-driven scenario: its compiled catalog is the serving
	// catalog and its summary is echoed on /metrics. (The mixed preset
	// rides the azure16 catalog, so the shared test model's flavor
	// space matches.)
	if cfg.Flavors.K() != s.catalog.K() {
		t.Fatalf("mixed spec catalog K=%d, test model trained on K=%d", cfg.Flavors.K(), s.catalog.K())
	}
	s.catalog = cfg.Flavors
	s.Workload = spec.Summary()

	recPath := filepath.Join(t.TempDir(), "served.jsonl")
	recorder, err := workload.OpenRecorder(recPath)
	if err != nil {
		t.Fatal(err)
	}
	tag := workload.ModelTag(s.currentModel())
	s.OnTrace = func(seed int64, w trace.Window, scale float64, tr *trace.Trace) {
		if err := recorder.Append(workload.NewRecord("generate", s.EngineKind, s.Precision, tag, seed, w, scale, tr)); err != nil {
			t.Errorf("record: %v", err)
		}
	}

	// ReloadFunc rebuilds the scenario the way cmd/traced does: the
	// model reloads from its source and the catalog re-compiles from
	// the same spec — so every swap exercises the spec-driven rebuild.
	model := s.currentModel()
	s.ReloadFunc = func() (*core.Model, *trace.FlavorSet, error) {
		recompiled, err := spec.Compile()
		if err != nil {
			return nil, nil, err
		}
		return model, recompiled.Flavors, nil
	}
	h := s.Handler()

	body := func(seed int64) string {
		return fmt.Sprintf(`{"periods": 24, "seed": %d, "format": "json"}`, seed)
	}
	const seeds = 4
	want := make([]string, seeds)
	for i := range want {
		rec := do(t, h, "POST", "/generate", body(int64(i+1)))
		if rec.Code != http.StatusOK {
			t.Fatalf("reference request: status %d: %s", rec.Code, rec.Body.String())
		}
		want[i] = rec.Body.String()
	}

	const workers = 8
	const perWorker = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				seed := int64(w%seeds + 1)
				rec := do(t, h, "POST", "/generate", body(seed))
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("worker %d: status %d: %s", w, rec.Code, rec.Body.String())
					return
				}
				if got := rec.Body.String(); got != want[seed-1] {
					errs <- fmt.Errorf("worker %d: seed %d response changed across spec-driven reload", w, seed)
					return
				}
			}
		}(w)
	}
	// Reload through the spec-rebuilding ReloadFunc (the POST /-/reload
	// path) while the workers hammer /generate.
	for i := 0; i < 10; i++ {
		rec := do(t, h, "POST", "/-/reload", "")
		if rec.Code != http.StatusOK {
			t.Fatalf("reload %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The spec summary survives every reload: /metrics still echoes the
	// scenario that configured the server.
	mrec := do(t, h, "GET", "/metrics", "")
	var metrics map[string]any
	if err := json.Unmarshal(mrec.Body.Bytes(), &metrics); err != nil {
		t.Fatal(err)
	}
	wl, ok := metrics["workload"].(map[string]any)
	if !ok {
		t.Fatalf("/metrics lost the workload summary after reloads: %v", metrics["workload"])
	}
	if wl["name"] != "MixedCohorts" {
		t.Fatalf("workload summary name = %v", wl["name"])
	}
	if cohorts, ok := wl["cohorts"].([]any); !ok || len(cohorts) != 3 {
		t.Fatalf("workload summary cohorts = %v", wl["cohorts"])
	}

	// Every request was recorded, and each recorded trace round-trips
	// to exactly the bytes its response carried — on both sides of the
	// swaps.
	if err := recorder.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(recPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := workload.ReadRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	if got, wantN := len(recs), seeds+workers*perWorker; got != wantN {
		t.Fatalf("recorded %d traces, want %d (dropped or double-recorded requests)", got, wantN)
	}
	for i, rec := range recs {
		var buf strings.Builder
		if err := rec.Trace().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if rec.Seed < 1 || rec.Seed > seeds {
			t.Fatalf("record %d has unexpected seed %d", i, rec.Seed)
		}
		if buf.String() != want[rec.Seed-1] {
			t.Fatalf("record %d (seed %d) does not reproduce the served response bytes", i, rec.Seed)
		}
	}
}
