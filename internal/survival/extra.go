package survival

import (
	"math"
	"sort"
)

// NelsonAalen estimates the discrete cumulative hazard H(j) = Σ_{i<=j}
// d_i/n_i from possibly-censored observations — the standard companion
// to Kaplan-Meier, with exp(-H) giving an alternative survival
// estimator that is better behaved at small risk sets.
func NelsonAalen(obs []Observation, bins Bins) []float64 {
	h := KaplanMeier(obs, bins)
	out := make([]float64, len(h))
	var cum float64
	for j, hj := range h {
		cum += hj
		out[j] = cum
	}
	return out
}

// SurvivalFromCumHazard converts a cumulative hazard to the
// Fleming-Harrington survival estimate S(j) = exp(-H(j)).
func SurvivalFromCumHazard(cumHazard []float64) []float64 {
	out := make([]float64, len(cumHazard))
	for j, hc := range cumHazard {
		out[j] = math.Exp(-hc)
	}
	return out
}

// MedianSurvival returns the smallest time at which the survival implied
// by a discrete hazard drops to 0.5 or below, using the given
// interpolation; it returns the horizon if survival never reaches 0.5.
func MedianSurvival(hazard []float64, bins Bins, interp Interpolation) float64 {
	return QuantileSurvival(hazard, bins, interp, 0.5)
}

// QuantileSurvival returns the smallest time t with S(t) <= 1-q (the
// q-th lifetime quantile). q must be in (0,1).
func QuantileSurvival(hazard []float64, bins Bins, interp Interpolation, q float64) float64 {
	if q <= 0 || q >= 1 {
		panic("survival: quantile must be in (0,1)")
	}
	target := 1 - q
	s := HazardToSurvival(hazard)
	sPrev := 1.0
	for j := 0; j < bins.J(); j++ {
		if s[j] > target {
			sPrev = s[j]
			continue
		}
		if interp == Stepped {
			return bins.Hi(j)
		}
		// CDI: survival falls linearly from sPrev at Lo(j) to s[j] at
		// Hi(j); solve for the crossing.
		if sPrev == s[j] {
			return bins.Lo(j)
		}
		frac := (sPrev - target) / (sPrev - s[j])
		return bins.Lo(j) + frac*(bins.Hi(j)-bins.Lo(j))
	}
	return bins.Horizon()
}

// GreenwoodBands computes pointwise (1-alpha) confidence bands for the
// Kaplan-Meier survival curve using Greenwood's variance formula with a
// normal approximation, clamped to [0, 1].
func GreenwoodBands(obs []Observation, bins Bins, alpha float64) (lo, surv, hi []float64) {
	if alpha <= 0 || alpha >= 1 {
		panic("survival: alpha must be in (0,1)")
	}
	j := bins.J()
	events := make([]float64, j)
	atRisk := make([]float64, j)
	for _, o := range obs {
		k := bins.Index(o.Duration)
		if o.Censored {
			for i := 0; i < k; i++ {
				atRisk[i]++
			}
		} else {
			for i := 0; i <= k; i++ {
				atRisk[i]++
			}
			events[k]++
		}
	}
	z := normalQuantile(1 - alpha/2)
	lo = make([]float64, j)
	surv = make([]float64, j)
	hi = make([]float64, j)
	s := 1.0
	varSum := 0.0
	for i := 0; i < j; i++ {
		if atRisk[i] > 0 {
			s *= 1 - events[i]/atRisk[i]
			if atRisk[i] > events[i] {
				varSum += events[i] / (atRisk[i] * (atRisk[i] - events[i]))
			}
		}
		se := s * math.Sqrt(varSum)
		surv[i] = s
		lo[i] = math.Max(0, s-z*se)
		hi[i] = math.Min(1, s+z*se)
	}
	return lo, surv, hi
}

// normalQuantile inverts the standard normal CDF via bisection on erf —
// accurate to ~1e-10, ample for confidence bands.
func normalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("survival: normal quantile needs p in (0,1)")
	}
	cdf := func(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }
	lo, hi := -10.0, 10.0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// RestrictedMeanSurvival returns the mean lifetime restricted to the
// horizon: ∫_0^horizon S(t) dt under the given interpolation, a robust
// summary when the tail is censored.
func RestrictedMeanSurvival(hazard []float64, bins Bins, interp Interpolation) float64 {
	s := HazardToSurvival(hazard)
	var total float64
	sPrev := 1.0
	for j := 0; j < bins.J(); j++ {
		width := bins.Hi(j) - bins.Lo(j)
		if interp == Stepped {
			total += sPrev * width
		} else {
			total += (sPrev + s[j]) / 2 * width
		}
		sPrev = s[j]
	}
	return total
}

// LogRankStat computes the two-sample log-rank statistic comparing
// lifetime distributions of groups a and b over the bins (larger values
// indicate stronger evidence the groups differ; compare against a
// chi-squared(1) critical value, e.g. 3.84 for p=0.05).
func LogRankStat(a, b []Observation, bins Bins) float64 {
	type counts struct{ events, atRisk []float64 }
	tally := func(obs []Observation) counts {
		c := counts{events: make([]float64, bins.J()), atRisk: make([]float64, bins.J())}
		for _, o := range obs {
			k := bins.Index(o.Duration)
			if o.Censored {
				for i := 0; i < k; i++ {
					c.atRisk[i]++
				}
			} else {
				for i := 0; i <= k; i++ {
					c.atRisk[i]++
				}
				c.events[k]++
			}
		}
		return c
	}
	ca, cb := tally(a), tally(b)
	var obsMinusExp, variance float64
	for j := 0; j < bins.J(); j++ {
		na, nb := ca.atRisk[j], cb.atRisk[j]
		n := na + nb
		d := ca.events[j] + cb.events[j]
		if n <= 1 || d == 0 {
			continue
		}
		expA := d * na / n
		obsMinusExp += ca.events[j] - expA
		variance += d * (na / n) * (nb / n) * (n - d) / (n - 1)
	}
	if variance == 0 {
		return 0
	}
	return obsMinusExp * obsMinusExp / variance
}

// SortedEventTimes returns the distinct uncensored event times in
// ascending order — a convenience for plotting and continuous-KM
// comparisons.
func SortedEventTimes(obs []Observation) []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, o := range obs {
		if o.Censored || seen[o.Duration] {
			continue
		}
		seen[o.Duration] = true
		out = append(out, o.Duration)
	}
	sort.Float64s(out)
	return out
}
