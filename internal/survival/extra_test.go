package survival

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestNelsonAalenMonotone(t *testing.T) {
	b := UniformBins(4, 4)
	obs := []Observation{{Duration: 0.5}, {Duration: 1.5}, {Duration: 2.5, Censored: true}, {Duration: 3.5}}
	h := NelsonAalen(obs, b)
	for i := 1; i < len(h); i++ {
		if h[i] < h[i-1] {
			t.Fatal("cumulative hazard must be non-decreasing")
		}
	}
	// First bin: 1 event, 4 at risk -> H(0) = 0.25.
	if math.Abs(h[0]-0.25) > 1e-12 {
		t.Fatalf("H(0) = %v", h[0])
	}
	s := SurvivalFromCumHazard(h)
	for i, v := range s {
		if v <= 0 || v > 1 {
			t.Fatalf("exp(-H) out of range at %d: %v", i, v)
		}
		if i > 0 && s[i] > s[i-1] {
			t.Fatal("survival must be non-increasing")
		}
	}
}

func TestFlemingHarringtonCloseToKM(t *testing.T) {
	// The estimators agree when per-bin hazards are small (exp(-h) ≈
	// 1-h); use a slowly-dying population.
	g := rng.New(1)
	b := UniformBins(10, 10)
	var obs []Observation
	for i := 0; i < 2000; i++ {
		obs = append(obs, Observation{Duration: g.Exponential(0.05)})
	}
	km := HazardToSurvival(KaplanMeier(obs, b))
	fh := SurvivalFromCumHazard(NelsonAalen(obs, b))
	for j := 0; j < 5; j++ {
		if math.Abs(km[j]-fh[j]) > 0.01 {
			t.Fatalf("KM %v vs FH %v at bin %d", km[j], fh[j], j)
		}
	}
}

func TestMedianAndQuantileSurvival(t *testing.T) {
	b := UniformBins(4, 4)
	// Hazard 0.5 in every bin: S = 0.5, 0.25, ...; median crossing is in
	// bin 0.
	h := []float64{0.5, 0.5, 0.5, 0.5}
	if got := MedianSurvival(h, b, Stepped); got != 1 {
		t.Fatalf("stepped median = %v, want 1 (upper edge of bin 0)", got)
	}
	cdi := MedianSurvival(h, b, CDI)
	if !(cdi > 0.9 && cdi <= 1.0) {
		t.Fatalf("CDI median = %v", cdi)
	}
	q90 := QuantileSurvival(h, b, CDI, 0.9)
	if q90 <= cdi {
		t.Fatalf("q90 %v should exceed median %v", q90, cdi)
	}
	// Survival never reaching the target returns the horizon.
	low := []float64{0.01, 0.01, 0.01, 0.01}
	if got := QuantileSurvival(low, b, CDI, 0.9); got != b.Horizon() {
		t.Fatalf("uncrossed quantile = %v, want horizon", got)
	}
}

func TestQuantileSurvivalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	QuantileSurvival([]float64{0.5}, UniformBins(1, 1), CDI, 0)
}

func TestGreenwoodBands(t *testing.T) {
	g := rng.New(2)
	b := UniformBins(8, 8)
	var obs []Observation
	for i := 0; i < 500; i++ {
		obs = append(obs, Observation{Duration: g.Exponential(0.4)})
	}
	lo, surv, hi := GreenwoodBands(obs, b, 0.05)
	for j := range surv {
		if !(lo[j] <= surv[j] && surv[j] <= hi[j]) {
			t.Fatalf("band ordering violated at %d: %v %v %v", j, lo[j], surv[j], hi[j])
		}
		if lo[j] < 0 || hi[j] > 1 {
			t.Fatalf("band out of [0,1] at %d", j)
		}
	}
	// Bands should be narrow with n=500 in early bins.
	if hi[1]-lo[1] > 0.15 {
		t.Fatalf("band too wide at bin 1: %v", hi[1]-lo[1])
	}
	// More data tightens the bands.
	var big []Observation
	for i := 0; i < 5000; i++ {
		big = append(big, Observation{Duration: g.Exponential(0.4)})
	}
	loB, _, hiB := GreenwoodBands(big, b, 0.05)
	if hiB[1]-loB[1] >= hi[1]-lo[1] {
		t.Fatal("more data should tighten the band")
	}
}

func TestGreenwoodBadAlphaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GreenwoodBands(nil, UniformBins(2, 2), 0)
}

func TestNormalQuantile(t *testing.T) {
	cases := map[float64]float64{
		0.5:   0,
		0.975: 1.95996,
		0.95:  1.64485,
	}
	for p, want := range cases {
		if got := normalQuantile(p); math.Abs(got-want) > 1e-4 {
			t.Errorf("normalQuantile(%v) = %v, want %v", p, got, want)
		}
	}
}

func TestRestrictedMeanSurvival(t *testing.T) {
	b := UniformBins(2, 2)
	// Certain death in bin 0: stepped RMS = 1*1 + 0*1 = 1; CDI = 0.5+0 = 0.5.
	h := []float64{1, 0}
	if got := RestrictedMeanSurvival(h, b, Stepped); got != 1 {
		t.Fatalf("stepped RMS = %v", got)
	}
	if got := RestrictedMeanSurvival(h, b, CDI); got != 0.5 {
		t.Fatalf("CDI RMS = %v", got)
	}
	// Immortal: RMS = horizon.
	if got := RestrictedMeanSurvival([]float64{0, 0}, b, CDI); got != 2 {
		t.Fatalf("immortal RMS = %v", got)
	}
}

func TestLogRankStat(t *testing.T) {
	g := rng.New(3)
	b := UniformBins(10, 10)
	var fast, slow, fast2 []Observation
	for i := 0; i < 400; i++ {
		fast = append(fast, Observation{Duration: g.Exponential(1.0)})
		fast2 = append(fast2, Observation{Duration: g.Exponential(1.0)})
		slow = append(slow, Observation{Duration: g.Exponential(0.3)})
	}
	distinct := LogRankStat(fast, slow, b)
	same := LogRankStat(fast, fast2, b)
	if distinct < 3.84 {
		t.Fatalf("log-rank %v should reject equal distributions", distinct)
	}
	if same > 3.84 {
		t.Fatalf("log-rank %v should not reject identical distributions", same)
	}
}

func TestSortedEventTimes(t *testing.T) {
	obs := []Observation{
		{Duration: 3}, {Duration: 1}, {Duration: 3},
		{Duration: 2, Censored: true}, {Duration: 5},
	}
	times := SortedEventTimes(obs)
	want := []float64{1, 3, 5}
	if len(times) != len(want) {
		t.Fatalf("times %v", times)
	}
	for i, w := range want {
		if times[i] != w {
			t.Fatalf("times %v", times)
		}
	}
}
