// Package survival implements discrete-time survival analysis (§2.3.1 of
// the paper): lifetime bins, conversions among the hazard, PMF, and
// survival functions, the Kaplan-Meier estimator (discrete, grouped, and
// continuous-time), continuous-density interpolation (CDI), and the
// Survival-MSE evaluation of Kvamme & Borgan used in Table 4.
package survival

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// Bins partitions lifetimes (in seconds) into J consecutive intervals.
// Edges has length J+1 with Edges[0] == 0; the final interval
// [Edges[J-1], Edges[J]) is the terminal catch-all whose upper edge
// serves as the finite horizon used for interpolation and sampling.
type Bins struct {
	Edges []float64
}

const (
	minute = 60.0
	hour   = 3600.0
	day    = 86400.0
)

// PaperBins returns the paper's 47-bin layout (§2.3.1): 5-minute bins to
// 1 hour, hourly bins to 10 hours, hourly bins to 24 hours, daily bins
// to 10 days, 5-day bins to 20 days, and a terminal >20d bin (capped at
// 40 days for interpolation).
func PaperBins() Bins {
	edges := []float64{0}
	for m := 5.0; m <= 60; m += 5 { // 12 bins to 1h
		edges = append(edges, m*minute)
	}
	for h := 2.0; h <= 10; h++ { // 9 bins to 10h
		edges = append(edges, h*hour)
	}
	for h := 11.0; h <= 24; h++ { // 14 bins to 24h
		edges = append(edges, h*hour)
	}
	for d := 2.0; d <= 10; d++ { // 9 bins to 10d
		edges = append(edges, d*day)
	}
	edges = append(edges, 15*day, 20*day) // 2 bins to 20d
	edges = append(edges, 40*day)         // terminal >20d bin
	return Bins{Edges: edges}
}

// UniformBins returns n equal-width bins covering [0, max).
func UniformBins(n int, max float64) Bins {
	if n <= 0 || max <= 0 {
		panic("survival: UniformBins needs n > 0 and max > 0")
	}
	edges := make([]float64, n+1)
	for i := range edges {
		edges[i] = max * float64(i) / float64(n)
	}
	return Bins{Edges: edges}
}

// FineBins returns the paper's 495-bin ablation: 5-minute intervals
// covering the same 0-40d span as PaperBins (Table 4's 495-bin rows are
// approximated by this uniform fine grid).
func FineBins() Bins {
	return UniformBins(495, 40*day)
}

// J returns the number of bins.
func (b Bins) J() int { return len(b.Edges) - 1 }

// Index returns the bin index (0-based) containing duration d seconds.
// Durations beyond the final edge fall in the last bin.
func (b Bins) Index(d float64) int {
	if d < 0 {
		panic(fmt.Sprintf("survival: negative duration %v", d))
	}
	// Binary search for the first edge greater than d.
	i := sort.SearchFloat64s(b.Edges[1:], math.Nextafter(d, math.Inf(1)))
	if i >= b.J() {
		return b.J() - 1
	}
	return i
}

// Lo returns the lower edge of bin j; Hi its upper edge.
func (b Bins) Lo(j int) float64 { return b.Edges[j] }

// Hi returns the upper edge of bin j.
func (b Bins) Hi(j int) float64 { return b.Edges[j+1] }

// Mid returns the midpoint of bin j.
func (b Bins) Mid(j int) float64 { return (b.Edges[j] + b.Edges[j+1]) / 2 }

// Horizon returns the final (catch-all) upper edge.
func (b Bins) Horizon() float64 { return b.Edges[len(b.Edges)-1] }

// HazardToPMF converts a discrete hazard h(j) into the lifetime PMF:
// f(j) = h(j) ∏_{i<j} (1-h(i)). Any residual mass beyond the last bin is
// folded into the last bin so the PMF sums to 1.
func HazardToPMF(h []float64) []float64 {
	f := make([]float64, len(h))
	surv := 1.0
	for j, hj := range h {
		f[j] = hj * surv
		surv *= 1 - hj
	}
	if len(f) > 0 {
		f[len(f)-1] += surv
	}
	return f
}

// HazardToSurvival converts hazard to the survival function: S(j) =
// ∏_{i<=j} (1-h(i)) is the probability the lifetime exceeds bin j.
func HazardToSurvival(h []float64) []float64 {
	return HazardToSurvivalInto(make([]float64, len(h)), h)
}

// HazardToSurvivalInto is HazardToSurvival into a caller-owned buffer
// (len(dst) must equal len(h)), for hot loops that evaluate many
// curves — the Table 4 grid sweep converts each subject's hazard once
// instead of once per grid time. Returns dst.
func HazardToSurvivalInto(dst, h []float64) []float64 {
	if len(dst) != len(h) {
		panic("survival: HazardToSurvivalInto length mismatch")
	}
	surv := 1.0
	for j, hj := range h {
		surv *= 1 - hj
		dst[j] = surv
	}
	return dst
}

// PMFToHazard converts a PMF over bins into the discrete hazard.
func PMFToHazard(f []float64) []float64 {
	h := make([]float64, len(f))
	surv := 1.0
	for j, fj := range f {
		if surv <= 0 {
			h[j] = 1
			continue
		}
		h[j] = math.Min(fj/surv, 1)
		surv -= fj
	}
	return h
}

// Observation is one subject for Kaplan-Meier estimation.
type Observation struct {
	Duration float64 // observed lifetime, or time-at-censoring
	Censored bool
}

// KaplanMeier estimates the discrete hazard over bins from possibly
// right-censored observations. A subject with an event in bin k is at
// risk in bins 0..k and contributes an event at k; a subject censored in
// bin c is at risk in bins 0..c-1 only (matching the likelihood in
// §2.3.2, which credits censored subjects with surviving bins < c).
func KaplanMeier(obs []Observation, bins Bins) []float64 {
	return kmShrunk(obs, bins, nil, 0)
}

// KaplanMeierIgnoreCensored estimates the hazard discarding censored
// subjects entirely (the biased variant discussed in §5.3).
func KaplanMeierIgnoreCensored(obs []Observation, bins Bins) []float64 {
	kept := make([]Observation, 0, len(obs))
	for _, o := range obs {
		if !o.Censored {
			kept = append(kept, o)
		}
	}
	return KaplanMeier(kept, bins)
}

// KaplanMeierCensoredAsEvents treats censoring times as termination
// events (the second ablation variant from §5.3).
func KaplanMeierCensoredAsEvents(obs []Observation, bins Bins) []float64 {
	conv := make([]Observation, len(obs))
	for i, o := range obs {
		conv[i] = Observation{Duration: o.Duration}
	}
	return KaplanMeier(conv, bins)
}

// KaplanMeierGrouped estimates one discrete hazard per group key (the
// paper's per-flavor KM baseline). Groups absent at estimation time fall
// back to the pooled hazard, which is stored under key -1.
// KaplanMeierGrouped is KaplanMeierGroupedShrunk with no shrinkage.
func KaplanMeierGrouped(obs []Observation, groups []int, bins Bins) map[int][]float64 {
	return KaplanMeierGroupedShrunk(obs, groups, bins, 0)
}

// KaplanMeierGroupedShrunk estimates per-group hazards with empirical-
// Bayes shrinkage toward the pooled hazard: each group's per-bin hazard
// is (events + tau*pooled) / (atRisk + tau). Shrinkage keeps sparse
// groups' hazards away from the degenerate 0/1 estimates that explode
// the BCE metric at small sample sizes; at the paper's million-VM scale
// tau is irrelevant, which is why the paper does not need it.
func KaplanMeierGroupedShrunk(obs []Observation, groups []int, bins Bins, tau float64) map[int][]float64 {
	if len(obs) != len(groups) {
		panic("survival: KaplanMeierGrouped length mismatch")
	}
	pooled := KaplanMeier(obs, bins)
	byGroup := make(map[int][]Observation)
	for i, o := range obs {
		byGroup[groups[i]] = append(byGroup[groups[i]], o)
	}
	out := make(map[int][]float64, len(byGroup)+1)
	for g, list := range byGroup {
		out[g] = kmShrunk(list, bins, pooled, tau)
	}
	out[-1] = pooled
	return out
}

// kmShrunk computes the discrete hazard with shrinkage toward prior.
func kmShrunk(obs []Observation, bins Bins, prior []float64, tau float64) []float64 {
	j := bins.J()
	events := make([]float64, j)
	atRisk := make([]float64, j)
	for _, o := range obs {
		k := bins.Index(o.Duration)
		if o.Censored {
			for i := 0; i < k; i++ {
				atRisk[i]++
			}
		} else {
			for i := 0; i <= k; i++ {
				atRisk[i]++
			}
			events[k]++
		}
	}
	h := make([]float64, j)
	for i := range h {
		denom := atRisk[i] + tau
		if denom <= 0 {
			continue
		}
		pseudo := 0.0
		if tau > 0 {
			pseudo = tau * prior[i]
		}
		h[i] = (events[i] + pseudo) / denom
	}
	return h
}

// ContinuousKM is the classic continuous-time Kaplan-Meier estimator:
// a right-continuous step survival function over the distinct event
// times.
type ContinuousKM struct {
	Times []float64 // distinct event times, ascending
	Surv  []float64 // S(t) just after Times[i]
}

// NewContinuousKM estimates the survival curve from observations.
func NewContinuousKM(obs []Observation) *ContinuousKM {
	sorted := make([]Observation, len(obs))
	copy(sorted, obs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Duration < sorted[j].Duration })
	km := &ContinuousKM{}
	n := float64(len(sorted))
	surv := 1.0
	i := 0
	for i < len(sorted) {
		t := sorted[i].Duration
		var events, leaving float64
		for i < len(sorted) && sorted[i].Duration == t {
			if !sorted[i].Censored {
				events++
			}
			leaving++
			i++
		}
		if events > 0 && n > 0 {
			surv *= 1 - events/n
			km.Times = append(km.Times, t)
			km.Surv = append(km.Surv, surv)
		}
		n -= leaving
	}
	return km
}

// At returns S(t) for the continuous KM curve.
func (km *ContinuousKM) At(t float64) float64 {
	// Find last event time <= t.
	i := sort.SearchFloat64s(km.Times, math.Nextafter(t, math.Inf(1))) - 1
	if i < 0 {
		return 1
	}
	return km.Surv[i]
}

// Interpolation selects how a discrete survival function is evaluated at
// continuous times (Table 4).
type Interpolation int

const (
	// Stepped assumes all terminations happen at bin upper edges.
	Stepped Interpolation = iota
	// CDI (continuous-density interpolation) assumes terminations are
	// distributed uniformly within each bin (§2.4).
	CDI
)

// SurvivalAt evaluates the survival function S(t) implied by a discrete
// hazard at continuous time t under the given interpolation. It
// converts the hazard on every call; loops that evaluate one hazard at
// many times should convert once and use SurvivalCurveAt.
func SurvivalAt(t float64, hazard []float64, bins Bins, interp Interpolation) float64 {
	return SurvivalCurveAt(t, HazardToSurvival(hazard), bins, interp)
}

// SurvivalCurveAt is SurvivalAt on a precomputed survival curve s
// (HazardToSurvival of the hazard), the allocation-free form for grid
// sweeps.
func SurvivalCurveAt(t float64, s []float64, bins Bins, interp Interpolation) float64 {
	if t < 0 {
		return 1
	}
	if t >= bins.Horizon() {
		t = bins.Horizon()
	}
	j := bins.Index(math.Min(t, math.Nextafter(bins.Horizon(), 0)))
	sPrev := 1.0
	if j > 0 {
		sPrev = s[j-1]
	}
	switch interp {
	case Stepped:
		if t >= bins.Hi(j) {
			return s[j]
		}
		return sPrev
	case CDI:
		frac := (t - bins.Lo(j)) / (bins.Hi(j) - bins.Lo(j))
		return sPrev + frac*(s[j]-sPrev)
	default:
		panic("survival: unknown interpolation")
	}
}

// SampleDuration draws a continuous lifetime from a discrete hazard:
// sample the bin by walking the hazard, then draw the position inside
// the bin per the interpolation (uniform for CDI, upper edge for
// Stepped).
func SampleDuration(hazard []float64, bins Bins, g *rng.RNG, interp Interpolation) float64 {
	j := SampleBin(hazard, g)
	if interp == Stepped {
		return bins.Hi(j)
	}
	return g.Uniform(bins.Lo(j), bins.Hi(j))
}

// SampleBin draws a lifetime bin by sequentially testing each hazard;
// if every hazard is avoided the final bin is returned.
func SampleBin(hazard []float64, g *rng.RNG) int {
	for j, h := range hazard {
		if g.Float64() < h {
			return j
		}
	}
	return len(hazard) - 1
}

// SurvivalMSE computes the continuous-domain Survival-MSE of Table 4:
// the mean squared error between a model survival curve and the true
// indicator survival 1[t < duration], averaged over a uniform grid of
// evaluation times and over subjects. Censored subjects are compared
// only over grid times before their censoring time.
func SurvivalMSE(curves func(i int, t float64) float64, obs []Observation, gridStep, horizon float64) float64 {
	var total float64
	var count int
	for i, o := range obs {
		limit := horizon
		if o.Censored && o.Duration < limit {
			limit = o.Duration
		}
		for t := gridStep; t <= limit; t += gridStep {
			truth := 0.0
			if t < o.Duration {
				truth = 1
			}
			diff := curves(i, t) - truth
			total += diff * diff
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}
