package survival

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestPaperBinsLayout(t *testing.T) {
	b := PaperBins()
	if b.J() != 47 {
		t.Fatalf("paper bins J = %d, want 47", b.J())
	}
	if b.Edges[0] != 0 {
		t.Fatal("first edge must be 0")
	}
	if b.Edges[1] != 5*minute {
		t.Fatalf("first bin should end at 5 min: %v", b.Edges[1])
	}
	if b.Edges[12] != hour {
		t.Fatalf("edge 12 should be 1h: %v", b.Edges[12])
	}
	if b.Edges[21] != 10*hour {
		t.Fatalf("edge 21 should be 10h: %v", b.Edges[21])
	}
	if b.Edges[46] != 20*day {
		t.Fatalf("edge 46 should be 20d: %v", b.Edges[46])
	}
	if b.Horizon() != 40*day {
		t.Fatalf("horizon should be 40d: %v", b.Horizon())
	}
	for i := 1; i < len(b.Edges); i++ {
		if b.Edges[i] <= b.Edges[i-1] {
			t.Fatalf("edges not strictly increasing at %d", i)
		}
	}
}

func TestFineBins(t *testing.T) {
	b := FineBins()
	if b.J() != 495 {
		t.Fatalf("fine bins J = %d", b.J())
	}
}

func TestUniformBinsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	UniformBins(0, 10)
}

func TestIndex(t *testing.T) {
	b := PaperBins()
	cases := []struct {
		d    float64
		want int
	}{
		{0, 0},
		{299, 0},
		{300, 1}, // exactly 5 min goes into second bin
		{3599, 11},
		{3600, 12},
		{9.5 * hour, 20},
		{25 * hour, 35},
		{19 * day, 45},
		{21 * day, 46},
		{1000 * day, 46}, // beyond horizon clamps to last bin
	}
	for _, c := range cases {
		if got := b.Index(c.d); got != c.want {
			t.Errorf("Index(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestIndexNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PaperBins().Index(-1)
}

func TestIndexEdgesQuick(t *testing.T) {
	b := PaperBins()
	f := func(raw uint32) bool {
		d := float64(raw) // up to ~4e9 s, beyond horizon
		j := b.Index(d)
		if j < 0 || j >= b.J() {
			return false
		}
		if j < b.J()-1 {
			return d >= b.Lo(j) && d < b.Hi(j)
		}
		return d >= b.Lo(j)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestHazardPMFSurvivalConsistency(t *testing.T) {
	h := []float64{0.1, 0.5, 0.2, 0.9}
	f := HazardToPMF(h)
	var sum float64
	for _, v := range f {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("PMF sums to %v", sum)
	}
	s := HazardToSurvival(h)
	// S(j) = 1 - cumulative PMF up to j (except for the folded tail in
	// the last bin).
	cum := 0.0
	for j := 0; j < len(h)-1; j++ {
		cum += f[j]
		if math.Abs(s[j]-(1-cum)) > 1e-12 {
			t.Errorf("S(%d) = %v, want %v", j, s[j], 1-cum)
		}
	}
}

func TestPMFToHazardRoundTrip(t *testing.T) {
	h := []float64{0.2, 0.4, 0.1, 0.8, 0.3}
	f := HazardToPMF(h)
	h2 := PMFToHazard(f)
	for j := range h {
		if j == len(h)-1 {
			continue // last bin absorbs residual mass
		}
		if math.Abs(h[j]-h2[j]) > 1e-12 {
			t.Errorf("hazard round trip at %d: %v vs %v", j, h[j], h2[j])
		}
	}
}

func TestHazardRoundTripQuick(t *testing.T) {
	f := func(raw [5]uint8) bool {
		h := make([]float64, 5)
		for i, r := range raw {
			h[i] = float64(r) / 300 // hazards in [0, 0.85]
		}
		f2 := HazardToPMF(h)
		h2 := PMFToHazard(f2)
		for j := 0; j < 4; j++ {
			if math.Abs(h[j]-h2[j]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKaplanMeierUncensored(t *testing.T) {
	// 4 subjects dying in bins 0,0,1,3 of a 4-bin layout.
	b := UniformBins(4, 4)
	obs := []Observation{{Duration: 0.5}, {Duration: 0.2}, {Duration: 1.5}, {Duration: 3.5}}
	h := KaplanMeier(obs, b)
	want := []float64{0.5, 0.5, 0, 1}
	for j := range want {
		if math.Abs(h[j]-want[j]) > 1e-12 {
			t.Errorf("h(%d) = %v, want %v", j, h[j], want[j])
		}
	}
}

func TestKaplanMeierCensoring(t *testing.T) {
	b := UniformBins(3, 3)
	// One event in bin 1; one subject censored in bin 1 (at risk only bin 0).
	obs := []Observation{
		{Duration: 1.5},
		{Duration: 1.5, Censored: true},
	}
	h := KaplanMeier(obs, b)
	if h[0] != 0 {
		t.Errorf("h(0) = %v", h[0])
	}
	// In bin 1 only the event subject is at risk.
	if h[1] != 1 {
		t.Errorf("h(1) = %v, want 1", h[1])
	}
}

func TestKaplanMeierVariants(t *testing.T) {
	b := UniformBins(4, 4)
	obs := []Observation{
		{Duration: 0.5},
		{Duration: 2.5, Censored: true},
		{Duration: 3.5},
	}
	ign := KaplanMeierIgnoreCensored(obs, b)
	// Ignoring censored: 2 subjects, events in bins 0 and 3.
	if ign[0] != 0.5 || ign[3] != 1 {
		t.Errorf("ignore-censored: %v", ign)
	}
	evt := KaplanMeierCensoredAsEvents(obs, b)
	// Censored treated as event in bin 2.
	if evt[2] != 0.5 {
		t.Errorf("censored-as-events h(2) = %v", evt[2])
	}
}

func TestKaplanMeierGrouped(t *testing.T) {
	b := UniformBins(2, 2)
	obs := []Observation{{Duration: 0.5}, {Duration: 1.5}, {Duration: 0.5}}
	groups := []int{0, 0, 1}
	m := KaplanMeierGrouped(obs, groups, b)
	if len(m) != 3 { // groups 0, 1 and pooled -1
		t.Fatalf("got %d groups", len(m))
	}
	if m[1][0] != 1 {
		t.Errorf("group 1 h(0) = %v", m[1][0])
	}
	if m[-1][0] != 2.0/3.0 {
		t.Errorf("pooled h(0) = %v", m[-1][0])
	}
}

func TestContinuousKMNoCensoring(t *testing.T) {
	obs := []Observation{{Duration: 1}, {Duration: 2}, {Duration: 3}, {Duration: 4}}
	km := NewContinuousKM(obs)
	// Empirical survival steps down by 1/4 at each event.
	checks := []struct{ t, want float64 }{
		{0.5, 1}, {1, 0.75}, {2.5, 0.5}, {3, 0.25}, {4.5, 0},
	}
	for _, c := range checks {
		if got := km.At(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("S(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestContinuousKMWithCensoring(t *testing.T) {
	// Event at 1 (n=3), censor at 2, event at 3 (n=1 at risk).
	obs := []Observation{{Duration: 1}, {Duration: 2, Censored: true}, {Duration: 3}}
	km := NewContinuousKM(obs)
	if got := km.At(1.5); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("S(1.5) = %v, want 2/3", got)
	}
	if got := km.At(3.5); math.Abs(got-0) > 1e-12 {
		t.Errorf("S(3.5) = %v, want 0", got)
	}
}

func TestSurvivalAtSteppedAndCDI(t *testing.T) {
	b := UniformBins(2, 2) // bins [0,1), [1,2)
	h := []float64{0.5, 1}
	// S(bin0)=0.5, S(bin1)=0.
	if got := SurvivalAt(0.5, h, b, Stepped); got != 1 {
		t.Errorf("stepped S(0.5) = %v, want 1 (no terminations until edge)", got)
	}
	if got := SurvivalAt(1, h, b, Stepped); got != 0.5 {
		t.Errorf("stepped S(1) = %v, want 0.5", got)
	}
	if got := SurvivalAt(0.5, h, b, CDI); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("CDI S(0.5) = %v, want 0.75", got)
	}
	if got := SurvivalAt(1.5, h, b, CDI); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("CDI S(1.5) = %v, want 0.25", got)
	}
	if got := SurvivalAt(-1, h, b, CDI); got != 1 {
		t.Errorf("S(-1) = %v, want 1", got)
	}
	if got := SurvivalAt(99, h, b, CDI); got != 0 {
		t.Errorf("S beyond horizon = %v, want 0", got)
	}
}

func TestSurvivalAtMonotoneQuick(t *testing.T) {
	b := PaperBins()
	g := rng.New(3)
	h := make([]float64, b.J())
	for i := range h {
		h[i] = g.Float64() * 0.3
	}
	f := func(raw1, raw2 uint32) bool {
		t1 := float64(raw1 % 3456000) // within 40d
		t2 := float64(raw2 % 3456000)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		return SurvivalAt(t1, h, b, CDI) >= SurvivalAt(t2, h, b, CDI)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleBinDistribution(t *testing.T) {
	g := rng.New(5)
	h := []float64{0.5, 0.5, 1}
	counts := make([]int, 3)
	n := 30000
	for i := 0; i < n; i++ {
		counts[SampleBin(h, g)]++
	}
	// Expected: 0.5, 0.25, 0.25.
	wants := []float64{0.5, 0.25, 0.25}
	for j, w := range wants {
		got := float64(counts[j]) / float64(n)
		if math.Abs(got-w) > 0.02 {
			t.Errorf("bin %d freq %v, want %v", j, got, w)
		}
	}
}

func TestSampleDurationWithinBin(t *testing.T) {
	g := rng.New(6)
	b := UniformBins(4, 4)
	h := []float64{0, 0, 1, 0} // always bin 2
	for i := 0; i < 100; i++ {
		d := SampleDuration(h, b, g, CDI)
		if d < 2 || d >= 3 {
			t.Fatalf("CDI duration %v outside bin [2,3)", d)
		}
	}
	if d := SampleDuration(h, b, g, Stepped); d != 3 {
		t.Fatalf("stepped duration %v, want upper edge 3", d)
	}
}

func TestSurvivalMSEPerfectModel(t *testing.T) {
	// A model that knows the exact lifetime has MSE 0 with a step
	// survival exactly at the lifetime.
	obs := []Observation{{Duration: 5}, {Duration: 10}}
	mse := SurvivalMSE(func(i int, t float64) float64 {
		if t < obs[i].Duration {
			return 1
		}
		return 0
	}, obs, 1, 12)
	if mse != 0 {
		t.Fatalf("perfect model MSE = %v", mse)
	}
}

func TestSurvivalMSECoinFlip(t *testing.T) {
	obs := []Observation{{Duration: 5}}
	mse := SurvivalMSE(func(i int, t float64) float64 { return 0.5 }, obs, 1, 10)
	if math.Abs(mse-0.25) > 1e-12 {
		t.Fatalf("coin-flip MSE = %v, want 0.25", mse)
	}
}

func TestSurvivalMSECensoredLimits(t *testing.T) {
	// Censored at 3: only t in {1,2,3} evaluated, all with truth 0 at
	// t=3? No: truth = 1[t < 3] so t=1,2 truth 1, t=3 truth 0.
	obs := []Observation{{Duration: 3, Censored: true}}
	mse := SurvivalMSE(func(i int, t float64) float64 { return 1 }, obs, 1, 10)
	if math.Abs(mse-1.0/3.0) > 1e-12 {
		t.Fatalf("censored MSE = %v, want 1/3", mse)
	}
}

func TestEmptySurvivalMSE(t *testing.T) {
	if mse := SurvivalMSE(func(int, float64) float64 { return 0 }, nil, 1, 10); mse != 0 {
		t.Fatalf("empty MSE = %v", mse)
	}
}

func TestBinAccessors(t *testing.T) {
	b := UniformBins(4, 8)
	if b.Lo(1) != 2 || b.Hi(1) != 4 || b.Mid(1) != 3 {
		t.Fatalf("accessors wrong: %v %v %v", b.Lo(1), b.Hi(1), b.Mid(1))
	}
}
