package synth

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/trace"
)

// ArrivalSampler draws the number of batches arriving in one period
// given the scheduled mean lambda for that period. A nil sampler means
// the Poisson process the legacy single-cohort path uses; the workload
// layer supplies bursty Gamma-mixed and Weibull-renewal samplers.
type ArrivalSampler func(g *rng.RNG, lambda float64) int

// Cohort is one heterogeneous client population inside a Config: its
// share of the aggregate arrival rate, its own arrival process, and
// fully resolved batch/lifetime/population parameters (the workload
// spec compiler fills unset overrides from the Config base values).
// Cohorts make scenario diversity a first-class input (ROADMAP item 1):
// a spec can mix a steady interactive cohort, a bursty batch cohort,
// and a heavy-tailed GPU cohort over one flavor catalog.
type Cohort struct {
	Name string
	// RateFraction is this cohort's share of Config.BaseRate; fractions
	// across cohorts must sum to ~1 so BaseRate keeps its meaning.
	RateFraction float64
	// Users is the cohort population size; user IDs are numbered
	// globally, cohorts occupying consecutive ID ranges.
	Users int
	// Arrival draws per-period batch counts (nil = Poisson).
	Arrival ArrivalSampler
	// SLOClass labels the cohort's traffic ("critical", "batch", ...);
	// generation ignores it, but the workload record format and the
	// /metrics echo carry it for downstream schedulers.
	SLOClass string

	// Population structure (zero values are invalid; the compiler
	// resolves them from the base config).
	UserZipf      float64
	FavoriteCount int
	Persistence   float64

	// Batch structure.
	BatchSizeMean   float64
	RepeatFlavorP   float64
	RepeatLifetimeP float64
	TemplateP       float64

	// Lifetimes.
	LifeMuMin, LifeMuMax float64
	LifeSigma            float64

	// FlavorSubset restricts this cohort's favorite flavors to the
	// given catalog indices (nil = whole catalog): the knob behind
	// "flavor distribution overrides" (e.g. a GPU-only cohort).
	FlavorSubset []int
}

// validateCohorts panics on structurally invalid cohort configs —
// mirrors the legacy Generate panic contract; the workload spec layer
// returns errors long before reaching here.
func (c Config) validateCohorts() {
	var frac float64
	for i, co := range c.Cohorts {
		if co.Users <= 0 || co.RateFraction <= 0 || co.FavoriteCount <= 0 ||
			co.BatchSizeMean < 1 || co.LifeMuMax < co.LifeMuMin {
			panic(fmt.Sprintf("synth: invalid cohort %d (%q) in %s", i, co.Name, c.Name))
		}
		for _, f := range co.FlavorSubset {
			if f < 0 || f >= c.Flavors.K() {
				panic(fmt.Sprintf("synth: cohort %q flavor index %d outside catalog [0,%d)", co.Name, f, c.Flavors.K()))
			}
		}
		frac += co.RateFraction
	}
	if math.Abs(frac-1) > 1e-6 {
		panic(fmt.Sprintf("synth: cohort rate fractions sum to %v, want 1", frac))
	}
}

// cohortState is the per-cohort generation state: its user population,
// its private RNG streams, and its recent-user persistence window.
type cohortState struct {
	cfg     Cohort
	userOff int // global ID of this cohort's first user
	users   []user
	alias   *rng.Alias
	recent  []int // recent user IDs (global numbering)

	arrivalG *rng.RNG
	batchG   *rng.RNG
	lifeG    *rng.RNG
}

// generateCohorts is the multi-cohort ground-truth process. Each
// cohort draws from its own Split-derived RNG streams, so cohorts are
// statistically independent and appending a new cohort to a spec never
// perturbs the bytes generated for the existing ones (pinned by
// TestCohortStreamIndependence). Per period, cohorts emit batches in
// declaration order, keeping the trace sorted and deterministic.
func (c Config) generateCohorts(seed int64) *trace.Trace {
	c.validateCohorts()
	g := rng.New(seed)

	// Global structure shared by all cohorts: the flavor→lifetime
	// shifts and the per-day random effects.
	flavorShift := make([]float64, c.Flavors.K())
	if c.FlavorLifeEffect != 0 {
		shiftG := g.Split()
		for f := range flavorShift {
			flavorShift[f] = c.FlavorLifeEffect * shiftG.NormFloat64()
		}
	}
	dayG := g.Split()
	dayEffects := make([]float64, c.Days)
	for d := range dayEffects {
		dayEffects[d] = math.Exp(c.DayEffect * dayG.NormFloat64())
	}

	states := make([]*cohortState, len(c.Cohorts))
	userOff := 0
	for i, co := range c.Cohorts {
		cg := g.Split()
		st := &cohortState{cfg: co, userOff: userOff}
		st.users = c.makeCohortUsers(cg.Split(), co)
		st.arrivalG = cg.Split()
		st.batchG = cg.Split()
		st.lifeG = cg.Split()
		weights := make([]float64, len(st.users))
		for j, u := range st.users {
			weights[j] = u.weight
		}
		st.alias = rng.NewAlias(weights)
		states[i] = st
		userOff += co.Users
	}

	periods := c.Days * trace.PeriodsPerDay
	tr := &trace.Trace{Flavors: c.Flavors, Periods: periods}
	const recentCap = 6
	id := 0
	for p := 0; p < periods; p++ {
		day := trace.DayOfHistory(p)
		sched := c.diurnal(trace.HourOfDay(p)) * c.weekly(trace.DayOfWeek(p)) * dayEffects[day]
		if c.Growth != nil {
			sched *= c.Growth(day)
		}
		for _, st := range states {
			co := st.cfg
			lambda := c.BaseRate * co.RateFraction * sched
			var n int
			if co.Arrival != nil {
				n = co.Arrival(st.arrivalG, lambda)
			} else {
				n = st.arrivalG.Poisson(lambda)
			}
			for b := 0; b < n; b++ {
				var uid int
				if len(st.recent) > 0 && st.batchG.Bernoulli(co.Persistence) {
					if st.batchG.Bernoulli(0.5) {
						uid = st.recent[len(st.recent)-1]
					} else {
						uid = st.recent[st.batchG.Intn(len(st.recent))]
					}
				} else {
					uid = st.userOff + st.alias.Sample(st.batchG)
				}
				st.recent = append(st.recent, uid)
				if len(st.recent) > recentCap {
					st.recent = st.recent[1:]
				}
				u := st.users[uid-st.userOff]
				size := 1 + st.batchG.Geometric(1/u.batchMean)
				templated := co.TemplateP > 0 && st.batchG.Bernoulli(co.TemplateP)
				prevFlavor := -1
				prevLife := -1.0
				for v := 0; v < size; v++ {
					var flavor int
					if templated {
						flavor = u.favorites[v%len(u.favorites)]
					} else if prevFlavor >= 0 && st.batchG.Bernoulli(co.RepeatFlavorP) {
						flavor = prevFlavor
					} else {
						flavor = u.favorites[st.batchG.Categorical(u.favWeight)]
					}
					life := prevLife
					if life < 0 || !st.lifeG.Bernoulli(co.RepeatLifetimeP) {
						mu := u.lifeMu + flavorShift[flavor]
						if c.LifeShift != nil {
							mu += c.LifeShift(day)
						}
						life = st.lifeG.LogNormal(mu, u.lifeSigma)
					} else {
						life *= st.lifeG.Uniform(0.9, 1.1)
					}
					tr.VMs = append(tr.VMs, trace.VM{
						ID:       id,
						User:     uid,
						Flavor:   flavor,
						Start:    p,
						Duration: life,
					})
					id++
					prevFlavor, prevLife = flavor, life
				}
			}
		}
	}
	return tr
}

// makeCohortUsers builds a cohort's population: like makeUsers but with
// the cohort's own Zipf skew, favorite count, batch/lifetime parameters,
// and (optionally) a restricted flavor subset for favorites.
func (c Config) makeCohortUsers(g *rng.RNG, co Cohort) []user {
	catalog := co.FlavorSubset
	if catalog == nil {
		catalog = make([]int, c.Flavors.K())
		for i := range catalog {
			catalog[i] = i
		}
	}
	k := len(catalog)
	favCount := co.FavoriteCount
	if favCount > k {
		favCount = k
	}
	globalPop := rng.ZipfWeights(k, 1.0)
	perm := g.Perm(k)
	popularity := make([]float64, k)
	for i, p := range perm {
		popularity[i] = globalPop[p]
	}
	popAlias := rng.NewAlias(popularity)
	users := make([]user, co.Users)
	zipf := rng.ZipfWeights(co.Users, co.UserZipf)
	for i := range users {
		u := &users[i]
		u.weight = zipf[i]
		seen := map[int]bool{}
		for len(u.favorites) < favCount {
			f := catalog[popAlias.Sample(g)]
			if seen[f] {
				continue
			}
			seen[f] = true
			u.favorites = append(u.favorites, f)
			u.favWeight = append(u.favWeight, math.Pow(0.3, float64(len(u.favWeight))))
		}
		u.batchMean = math.Max(1, co.BatchSizeMean*g.Uniform(0.5, 1.5))
		u.lifeMu = g.Uniform(co.LifeMuMin, co.LifeMuMax)
		u.lifeSigma = co.LifeSigma * g.Uniform(0.7, 1.3)
	}
	return users
}
