package synth

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/trace"
)

// threeCohorts returns a small three-cohort config with distinct
// arrival processes and rate fractions over the Azure catalog.
func threeCohorts() Config {
	cfg := AzureLike()
	cfg.Days = 3
	cfg.BaseRate = 6
	cfg.Cohorts = []Cohort{
		{
			Name: "interactive", RateFraction: 0.5, Users: 60,
			SLOClass: "critical",
			UserZipf: 1.1, FavoriteCount: 3, Persistence: 0.45,
			BatchSizeMean: 2.0, RepeatFlavorP: 0.85, RepeatLifetimeP: 0.8, TemplateP: 0.35,
			LifeMuMin: math.Log(8 * 60), LifeMuMax: math.Log(86400), LifeSigma: 1.0,
		},
		{
			Name: "batch", RateFraction: 0.3, Users: 30,
			SLOClass: "batch",
			Arrival: func(g *rng.RNG, lambda float64) int {
				// Bursty: Poisson with a unit-mean Gamma rate multiplier.
				return g.Poisson(lambda * g.Gamma(0.25, 4))
			},
			UserZipf: 1.3, FavoriteCount: 2, Persistence: 0.5,
			BatchSizeMean: 4.0, RepeatFlavorP: 0.9, RepeatLifetimeP: 0.85, TemplateP: 0.1,
			LifeMuMin: math.Log(3600), LifeMuMax: math.Log(4 * 86400), LifeSigma: 1.2,
		},
		{
			Name: "gpu", RateFraction: 0.2, Users: 10,
			SLOClass: "best-effort",
			Arrival: func(g *rng.RNG, lambda float64) int {
				// Regular: Weibull-renewal-style underdispersed counts.
				n := 0
				t := g.Weibull(2, 1/(lambda*0.8862269254527580+1e-12))
				for t < 1 {
					n++
					t += g.Weibull(2, 1/(lambda*0.8862269254527580+1e-12))
				}
				return n
			},
			UserZipf: 1.0, FavoriteCount: 2, Persistence: 0.3,
			BatchSizeMean: 1.5, RepeatFlavorP: 0.95, RepeatLifetimeP: 0.9, TemplateP: 0,
			LifeMuMin: math.Log(6 * 3600), LifeMuMax: math.Log(8 * 86400), LifeSigma: 0.8,
			FlavorSubset: []int{12, 13, 14, 15},
		},
	}
	return cfg
}

func traceBytes(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCohortGenerateDeterministic pins the multi-cohort path's seed
// determinism and basic trace invariants.
func TestCohortGenerateDeterministic(t *testing.T) {
	cfg := threeCohorts()
	a := cfg.Generate(5)
	b := cfg.Generate(5)
	if err := a.Validate(); err != nil {
		t.Fatalf("invalid cohort trace: %v", err)
	}
	if len(a.VMs) == 0 {
		t.Fatal("cohort generate produced no VMs")
	}
	if !bytes.Equal(traceBytes(t, a), traceBytes(t, b)) {
		t.Fatal("same seed produced different cohort traces")
	}
	if c := cfg.Generate(6); bytes.Equal(traceBytes(t, a), traceBytes(t, c)) {
		t.Fatal("different seeds produced identical cohort traces")
	}
}

// TestCohortRateFractions checks each cohort's share of arrivals lands
// near its declared rate fraction. Cohort membership is recovered from
// the global user-ID ranges.
func TestCohortRateFractions(t *testing.T) {
	cfg := threeCohorts()
	cfg.Days = 6
	// Flatten burstiness out of the comparison: replace the bursty and
	// regular samplers with Poisson so each cohort's expected share is
	// exactly its fraction.
	for i := range cfg.Cohorts {
		cfg.Cohorts[i].Arrival = nil
	}
	tr := cfg.Generate(9)
	counts := make([]int, len(cfg.Cohorts))
	bounds := make([]int, len(cfg.Cohorts)+1)
	for i, co := range cfg.Cohorts {
		bounds[i+1] = bounds[i] + co.Users
	}
	// Count batches (not VMs): rate fractions govern batch arrivals,
	// while VM counts also absorb the per-cohort batch-size means.
	for _, pb := range tr.PeriodBatches() {
		for _, b := range pb {
			for c := range counts {
				if b.User >= bounds[c] && b.User < bounds[c+1] {
					counts[c]++
				}
			}
		}
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		t.Fatal("no batches generated")
	}
	for i, co := range cfg.Cohorts {
		got := float64(counts[i]) / float64(total)
		if math.Abs(got-co.RateFraction) > 0.06 {
			t.Errorf("cohort %q: batch share %.3f want %.3f +- 0.06", co.Name, got, co.RateFraction)
		}
	}
}

// TestCohortFlavorSubset proves the flavor override: the gpu cohort
// must only ever start VMs from its declared flavor subset.
func TestCohortFlavorSubset(t *testing.T) {
	cfg := threeCohorts()
	tr := cfg.Generate(21)
	gpuStart := cfg.Cohorts[0].Users + cfg.Cohorts[1].Users
	allowed := map[int]bool{}
	for _, f := range cfg.Cohorts[2].FlavorSubset {
		allowed[f] = true
	}
	seenGPU := false
	for _, vm := range tr.VMs {
		if vm.User < gpuStart {
			continue
		}
		seenGPU = true
		if !allowed[vm.Flavor] {
			t.Fatalf("gpu cohort VM %d uses flavor %d outside subset", vm.ID, vm.Flavor)
		}
	}
	if !seenGPU {
		t.Fatal("gpu cohort generated no VMs")
	}
}

// TestCohortStreamIndependence pins the Split-per-cohort stream layout:
// appending a cohort must not change the bytes generated for the
// cohorts that were already there.
func TestCohortStreamIndependence(t *testing.T) {
	cfg := threeCohorts()
	two := cfg
	two.Cohorts = append([]Cohort{}, cfg.Cohorts[:2]...)
	// Renormalize fractions so the two-cohort config is valid while the
	// per-cohort lambdas stay identical: scale BaseRate down instead.
	sum := two.Cohorts[0].RateFraction + two.Cohorts[1].RateFraction
	two.BaseRate = cfg.BaseRate * sum
	for i := range two.Cohorts {
		two.Cohorts[i].RateFraction /= sum
	}
	full := cfg.Generate(33)
	partial := two.Generate(33)
	userCut := cfg.Cohorts[0].Users + cfg.Cohorts[1].Users
	var fullFirst, partFirst []trace.VM
	for _, vm := range full.VMs {
		if vm.User < userCut {
			vm.ID = 0 // IDs interleave with the third cohort; ignore them
			fullFirst = append(fullFirst, vm)
		}
	}
	for _, vm := range partial.VMs {
		if vm.User < userCut {
			vm.ID = 0
			partFirst = append(partFirst, vm)
		}
	}
	if len(fullFirst) == 0 || len(fullFirst) != len(partFirst) {
		t.Fatalf("first-two-cohort VM counts differ: %d vs %d", len(fullFirst), len(partFirst))
	}
	for i := range fullFirst {
		if fullFirst[i] != partFirst[i] {
			t.Fatalf("VM %d differs with third cohort present: %+v vs %+v", i, fullFirst[i], partFirst[i])
		}
	}
}

// TestLegacyPathUntouchedByCohortSupport guards the refactor: a config
// with no cohorts must generate exactly the bytes it did before cohort
// support existed (cross-checked against the seeded AzureLike trace the
// rest of the suite depends on).
func TestLegacyPathUntouchedByCohortSupport(t *testing.T) {
	cfg := AzureLike()
	cfg.Days = 2
	cfg.Users = 40
	cfg.BaseRate = 1.5
	a := cfg.Generate(3)
	cfg.Cohorts = nil // explicit: empty means legacy
	b := cfg.Generate(3)
	if !bytes.Equal(traceBytes(t, a), traceBytes(t, b)) {
		t.Fatal("legacy path changed")
	}
}
