// Package synth is the ground-truth workload simulator that stands in
// for the proprietary Microsoft Azure and Huawei Cloud production traces
// (§3 of the paper). It plants exactly the statistical structure the
// paper documents in the real data — user-specific batches, intra-batch
// flavor and lifetime momentum, diurnal and weekly seasonality, per-day
// random effects ("every day is unique"), long-range user persistence,
// workload growth with change-points, heavy-tailed lifetimes — so that
// the paper's experiments, which measure whether each model recovers
// that structure, remain meaningful without the original bytes.
package synth

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/trace"
)

// Config is the full parameterization of the ground-truth process.
type Config struct {
	Name  string
	Days  int // history length
	Users int

	Flavors *trace.FlavorSet

	// Arrival process.
	BaseRate   float64 // mean batches/period at reference conditions
	DiurnalAmp float64 // 0..1 amplitude of the hour-of-day curve
	WeekendDip float64 // multiplier applied on Saturday/Sunday
	DayEffect  float64 // sigma of the per-day log-normal random effect
	// Growth returns the arrival-rate multiplier for a given day
	// (identity if nil). HuaweiLike uses fast growth that levels off.
	Growth func(day int) float64

	// User population.
	UserZipf      float64 // activity skew across users
	FavoriteCount int     // favorite flavors per user
	Persistence   float64 // probability a batch comes from a recently active user

	// Batch structure.
	BatchSizeMean   float64 // mean of the (1+geometric) batch size
	RepeatFlavorP   float64 // within-batch flavor momentum
	RepeatLifetimeP float64 // within-batch lifetime momentum
	// TemplateP is the probability a batch is a templated deployment:
	// the user's favorite flavors issued cyclically (web+db+cache-style
	// pods). Templates make the most probable next flavor different from
	// a plain repeat — the structure behind the paper's observation that
	// the LSTM beats RepeatFlav ("the most probable flavor is not always
	// a repeat of the previous one", §5.2).
	TemplateP float64

	// Lifetimes: per-user log-normal profiles.
	LifeMuMin, LifeMuMax float64 // user-level mean log-lifetime range (seconds)
	LifeSigma            float64 // within-user log-lifetime spread
	// FlavorLifeEffect scales per-flavor log-lifetime shifts, planting
	// the flavor→lifetime correlation that makes the paper's per-flavor
	// Kaplan-Meier baseline beat the pooled one (Table 3).
	FlavorLifeEffect float64

	// Cohorts, when non-empty, switches Generate to the multi-cohort
	// process (cohort.go): each cohort gets its own rate share, arrival
	// process, and population/batch/lifetime parameters, while BaseRate,
	// the diurnal/weekly/growth schedules, DayEffect, and
	// FlavorLifeEffect stay global. Empty Cohorts runs the legacy
	// single-population path byte-for-byte unchanged.
	Cohorts []Cohort
	// LifeShift returns an additive shift to the log-lifetime for a
	// given day (identity if nil). HuaweiLike shortens lifetimes over
	// the history, planting the regime change that defeats whole-history
	// empirical baselines in Figure 8.
	LifeShift func(day int) float64
}

// AzureFlavors builds the 16-flavor Azure-like catalog (4 CPU sizes ×
// 4 memory ratios), matching the paper's 16 CPU/memory combinations.
func AzureFlavors() *trace.FlavorSet {
	fs := &trace.FlavorSet{}
	for _, cpu := range []float64{1, 2, 4, 8} {
		for _, ratio := range []float64{1.75, 3.5, 7, 14} {
			fs.Defs = append(fs.Defs, trace.FlavorDef{
				Name:  fmt.Sprintf("A%gr%g", cpu, ratio),
				CPU:   cpu,
				MemGB: cpu * ratio,
			})
		}
	}
	return fs
}

// HuaweiFlavors builds a 259-flavor catalog mimicking Huawei Cloud's
// mix of CPU/memory combinations, hardware generations, and special
// resource attributes (§3.2).
func HuaweiFlavors() *trace.FlavorSet {
	fs := &trace.FlavorSet{}
	cpus := []float64{1, 2, 4, 8, 12, 16, 24, 32, 48, 64}
	ratios := []float64{1, 2, 4, 8}
	gens := []string{"s3", "c6", "m5"}
	for _, gen := range gens {
		for _, cpu := range cpus {
			for _, ratio := range ratios {
				if fs.K() >= 259 {
					return fs
				}
				fs.Defs = append(fs.Defs, trace.FlavorDef{
					Name:  fmt.Sprintf("%s.%gxlarge.%g", gen, cpu, ratio),
					CPU:   cpu,
					MemGB: cpu * ratio,
				})
			}
		}
	}
	// Special flavors (GPU / local-disk variants) to reach exactly 259.
	i := 0
	for fs.K() < 259 {
		cpu := cpus[i%len(cpus)]
		fs.Defs = append(fs.Defs, trace.FlavorDef{
			Name:  fmt.Sprintf("g5.%gxlarge.v%d", cpu, i),
			CPU:   cpu,
			MemGB: cpu * 4,
		})
		i++
	}
	return fs
}

// AzureLike returns the configuration emulating the Azure V1 trace: a
// 30-day window, 16 flavors, strong diurnal pattern, no growth trend,
// noticeable day-to-day variation.
func AzureLike() Config {
	return Config{
		Name:             "AzureLike",
		Days:             30,
		Users:            400,
		Flavors:          AzureFlavors(),
		BaseRate:         5,
		DiurnalAmp:       0.45,
		WeekendDip:       0.6,
		DayEffect:        0.30,
		UserZipf:         1.1,
		FavoriteCount:    3,
		Persistence:      0.45,
		BatchSizeMean:    2.6,
		RepeatFlavorP:    0.85,
		RepeatLifetimeP:  0.8,
		TemplateP:        0.35,
		LifeMuMin:        math.Log(8 * 60),    // 8 minutes
		LifeMuMax:        math.Log(2 * 86400), // 2 days
		LifeSigma:        1.0,
		FlavorLifeEffect: 0.7,
	}
}

// HuaweiLike returns the configuration emulating the Huawei Cloud trace:
// a long window, 259 flavors, lower arrival rate, fast growth that
// levels off, and lifetimes that shorten over the history (the regime
// change behind Figure 8).
func HuaweiLike() Config {
	cfg := Config{
		Name:             "HuaweiLike",
		Days:             60, // scaled stand-in for the paper's 10 months
		Users:            300,
		Flavors:          HuaweiFlavors(),
		BaseRate:         1.6,
		DiurnalAmp:       0.3,
		WeekendDip:       0.75,
		DayEffect:        0.15,
		UserZipf:         1.2,
		FavoriteCount:    2,
		Persistence:      0.5,
		BatchSizeMean:    3.2,
		RepeatFlavorP:    0.92,
		RepeatLifetimeP:  0.85,
		TemplateP:        0.25,
		LifeMuMin:        math.Log(20 * 60),
		LifeMuMax:        math.Log(8 * 86400),
		LifeSigma:        1.0,
		FlavorLifeEffect: 0.5,
	}
	days := float64(cfg.Days)
	cfg.Growth = func(day int) float64 {
		// Logistic growth from ~0.45x to ~1x, leveled off in the final
		// quarter of the history.
		x := float64(day) / days
		return 0.45 + 0.55/(1+math.Exp(-10*(x-0.45)))
	}
	cfg.LifeShift = func(day int) float64 {
		// Early-history VMs live ~3.3x longer; the shift decays to zero
		// by three-quarters through the history.
		x := float64(day) / days
		return 1.2 * math.Max(0, 1-x/0.75)
	}
	return cfg
}

// user is one member of the simulated population.
type user struct {
	weight    float64
	favorites []int     // flavor indices
	favWeight []float64 // unnormalized preference weights
	batchMean float64
	lifeMu    float64
	lifeSigma float64
}

// Generate runs the ground-truth process and returns the full-history
// trace. The trace is uncensored (every VM has its true duration);
// apply trace.Slice to impose observation windows.
func (c Config) Generate(seed int64) *trace.Trace {
	if len(c.Cohorts) > 0 {
		if c.Days <= 0 || c.Flavors == nil || c.Flavors.K() == 0 {
			panic(fmt.Sprintf("synth: invalid config %+v", c.Name))
		}
		return c.generateCohorts(seed)
	}
	if c.Days <= 0 || c.Users <= 0 || c.Flavors == nil || c.Flavors.K() == 0 {
		panic(fmt.Sprintf("synth: invalid config %+v", c.Name))
	}
	g := rng.New(seed)
	users := c.makeUsers(g.Split())
	arrivalG := g.Split()
	batchG := g.Split()
	lifeG := g.Split()

	// Per-flavor lifetime shifts (flavor→lifetime correlation).
	flavorShift := make([]float64, c.Flavors.K())
	if c.FlavorLifeEffect != 0 {
		shiftG := g.Split()
		for f := range flavorShift {
			flavorShift[f] = c.FlavorLifeEffect * shiftG.NormFloat64()
		}
	}

	// Per-day random effects ("every day is unique").
	dayEffects := make([]float64, c.Days)
	for d := range dayEffects {
		dayEffects[d] = math.Exp(c.DayEffect * arrivalG.NormFloat64())
	}

	periods := c.Days * trace.PeriodsPerDay
	tr := &trace.Trace{Flavors: c.Flavors, Periods: periods}
	userWeights := make([]float64, len(users))
	for i, u := range users {
		userWeights[i] = u.weight
	}
	userAlias := rng.NewAlias(userWeights)

	// Recently active users: a small FIFO that implements cross-period
	// persistence (long-range correlation).
	var recent []int
	// A short recency window concentrates cross-batch persistence on the
	// last few users, matching the strong short-range reuse the paper
	// documents (Figure 9: most requests reuse one of the last few
	// flavor types).
	const recentCap = 6

	id := 0
	for p := 0; p < periods; p++ {
		day := trace.DayOfHistory(p)
		lambda := c.BaseRate * c.diurnal(trace.HourOfDay(p)) * c.weekly(trace.DayOfWeek(p)) * dayEffects[day]
		if c.Growth != nil {
			lambda *= c.Growth(day)
		}
		n := arrivalG.Poisson(lambda)
		for b := 0; b < n; b++ {
			var uid int
			if len(recent) > 0 && batchG.Bernoulli(c.Persistence) {
				// Half of persistent batches come from the immediately
				// previous batch's user (users submit several batches in
				// a row), the rest from the recent-user window.
				if batchG.Bernoulli(0.5) {
					uid = recent[len(recent)-1]
				} else {
					uid = recent[batchG.Intn(len(recent))]
				}
			} else {
				uid = userAlias.Sample(batchG)
			}
			recent = append(recent, uid)
			if len(recent) > recentCap {
				recent = recent[1:]
			}
			u := users[uid]
			size := 1 + batchG.Geometric(1/u.batchMean)
			templated := c.TemplateP > 0 && batchG.Bernoulli(c.TemplateP)
			prevFlavor := -1
			prevLife := -1.0
			for v := 0; v < size; v++ {
				var flavor int
				if templated {
					// Templated deployment: cycle the user's favorites
					// in order (web+db+cache-style pods).
					flavor = u.favorites[v%len(u.favorites)]
				} else if prevFlavor >= 0 && batchG.Bernoulli(c.RepeatFlavorP) {
					flavor = prevFlavor
				} else {
					flavor = u.favorites[batchG.Categorical(u.favWeight)]
				}
				life := prevLife
				if life < 0 || !lifeG.Bernoulli(c.RepeatLifetimeP) {
					mu := u.lifeMu + flavorShift[flavor]
					if c.LifeShift != nil {
						mu += c.LifeShift(day)
					}
					life = lifeG.LogNormal(mu, u.lifeSigma)
				} else {
					life *= lifeG.Uniform(0.9, 1.1)
				}
				tr.VMs = append(tr.VMs, trace.VM{
					ID:       id,
					User:     uid,
					Flavor:   flavor,
					Start:    p,
					Duration: life,
				})
				id++
				prevFlavor, prevLife = flavor, life
			}
		}
	}
	return tr
}

func (c Config) makeUsers(g *rng.RNG) []user {
	k := c.Flavors.K()
	globalPop := rng.ZipfWeights(k, 1.0)
	// Shuffle so flavor index order is not popularity order.
	perm := g.Perm(k)
	popularity := make([]float64, k)
	for i, p := range perm {
		popularity[i] = globalPop[p]
	}
	popAlias := rng.NewAlias(popularity)
	users := make([]user, c.Users)
	zipf := rng.ZipfWeights(c.Users, c.UserZipf)
	for i := range users {
		u := &users[i]
		u.weight = zipf[i]
		seen := map[int]bool{}
		for len(u.favorites) < c.FavoriteCount {
			f := popAlias.Sample(g)
			if seen[f] {
				continue
			}
			seen[f] = true
			u.favorites = append(u.favorites, f)
			// Geometric preference decay across favorites.
			u.favWeight = append(u.favWeight, math.Pow(0.3, float64(len(u.favWeight))))
		}
		u.batchMean = math.Max(1, c.BatchSizeMean*g.Uniform(0.5, 1.5))
		u.lifeMu = g.Uniform(c.LifeMuMin, c.LifeMuMax)
		u.lifeSigma = c.LifeSigma * g.Uniform(0.7, 1.3)
	}
	return users
}

func (c Config) diurnal(hour int) float64 {
	// Peak mid-afternoon, trough pre-dawn.
	return 1 + c.DiurnalAmp*math.Sin(2*math.Pi*(float64(hour)-9)/24)
}

func (c Config) weekly(dow int) float64 {
	if dow >= 5 {
		return c.WeekendDip
	}
	return 1
}

// StandardSplit carves the full history into train/dev/test windows in
// roughly the paper's Table-1 proportions (~70/12/18).
func StandardSplit(days int) (train, dev, test trace.Window) {
	p := trace.PeriodsPerDay
	trainEnd := days * 7 / 10
	devEnd := trainEnd + days*12/100
	if devEnd <= trainEnd {
		devEnd = trainEnd + 1
	}
	if devEnd >= days {
		devEnd = days - 1
	}
	return trace.Window{Start: 0, End: trainEnd * p},
		trace.Window{Start: trainEnd * p, End: devEnd * p},
		trace.Window{Start: devEnd * p, End: days * p}
}
