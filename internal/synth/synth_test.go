package synth

import (
	"math"
	"testing"

	"repro/internal/trace"
)

// smallAzure returns a scaled-down AzureLike config for fast tests.
func smallAzure() Config {
	cfg := AzureLike()
	cfg.Days = 4
	cfg.Users = 60
	cfg.BaseRate = 2
	return cfg
}

func TestFlavorCatalogs(t *testing.T) {
	if k := AzureFlavors().K(); k != 16 {
		t.Fatalf("Azure flavors = %d, want 16", k)
	}
	if k := HuaweiFlavors().K(); k != 259 {
		t.Fatalf("Huawei flavors = %d, want 259", k)
	}
	names := map[string]bool{}
	for _, d := range HuaweiFlavors().Defs {
		if names[d.Name] {
			t.Fatalf("duplicate flavor name %q", d.Name)
		}
		names[d.Name] = true
		if d.CPU <= 0 || d.MemGB <= 0 {
			t.Fatalf("non-positive resources: %+v", d)
		}
	}
}

func TestGenerateValidTrace(t *testing.T) {
	tr := smallAzure().Generate(1)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Periods != 4*trace.PeriodsPerDay {
		t.Fatalf("periods = %d", tr.Periods)
	}
	if len(tr.VMs) < 500 {
		t.Fatalf("suspiciously few VMs: %d", len(tr.VMs))
	}
	for _, vm := range tr.VMs {
		if vm.Censored {
			t.Fatal("full-history trace must be uncensored")
		}
		if vm.Duration <= 0 {
			t.Fatalf("non-positive duration: %+v", vm)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallAzure()
	a := cfg.Generate(7)
	b := cfg.Generate(7)
	if len(a.VMs) != len(b.VMs) {
		t.Fatalf("lengths differ: %d vs %d", len(a.VMs), len(b.VMs))
	}
	for i := range a.VMs {
		if a.VMs[i] != b.VMs[i] {
			t.Fatalf("VM %d differs", i)
		}
	}
	c := cfg.Generate(8)
	if len(a.VMs) == len(c.VMs) {
		same := true
		for i := range a.VMs {
			if a.VMs[i] != c.VMs[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestBatchStructure(t *testing.T) {
	tr := smallAzure().Generate(2)
	pb := tr.PeriodBatches()
	var batches, jobs int
	for _, list := range pb {
		for _, b := range list {
			batches++
			jobs += len(b.Indices)
			// All VMs in a batch share the user.
			for _, idx := range b.Indices {
				if tr.VMs[idx].User != b.User {
					t.Fatal("batch user mismatch")
				}
			}
		}
	}
	if batches == 0 {
		t.Fatal("no batches")
	}
	mean := float64(jobs) / float64(batches)
	if mean < 1.5 || mean > 5 {
		t.Fatalf("mean batch size %v outside plausible range", mean)
	}
}

// TestFlavorMomentum verifies the planted intra-batch correlation: the
// probability that consecutive VMs in a batch share a flavor should be
// far higher than the marginal flavor-collision probability.
func TestFlavorMomentum(t *testing.T) {
	tr := smallAzure().Generate(3)
	pb := tr.PeriodBatches()
	var same, pairs int
	for _, list := range pb {
		for _, b := range list {
			for i := 1; i < len(b.Indices); i++ {
				pairs++
				if tr.VMs[b.Indices[i]].Flavor == tr.VMs[b.Indices[i-1]].Flavor {
					same++
				}
			}
		}
	}
	if pairs < 100 {
		t.Fatalf("too few pairs: %d", pairs)
	}
	frac := float64(same) / float64(pairs)
	// Repeat-momentum batches (1-TemplateP of them) repeat with p=0.85;
	// templated batches cycle distinct flavors, diluting the raw
	// same-flavor fraction.
	if frac < 0.5 {
		t.Fatalf("flavor momentum %v, want >= 0.5", frac)
	}
}

// TestLifetimeMomentum verifies consecutive VMs in a batch have highly
// correlated lifetimes.
func TestLifetimeMomentum(t *testing.T) {
	tr := smallAzure().Generate(4)
	pb := tr.PeriodBatches()
	var close, pairs int
	for _, list := range pb {
		for _, b := range list {
			for i := 1; i < len(b.Indices); i++ {
				pairs++
				a := tr.VMs[b.Indices[i]].Duration
				c := tr.VMs[b.Indices[i-1]].Duration
				if math.Abs(math.Log(a/c)) < 0.3 {
					close++
				}
			}
		}
	}
	frac := float64(close) / float64(pairs)
	if frac < 0.6 {
		t.Fatalf("lifetime momentum %v, want >= 0.6", frac)
	}
}

// TestDiurnalPattern verifies arrival seasonality: afternoon rates should
// exceed pre-dawn rates.
func TestDiurnalPattern(t *testing.T) {
	cfg := AzureLike()
	cfg.Days = 7
	cfg.Users = 100
	cfg.BaseRate = 4
	cfg.DayEffect = 0 // isolate the diurnal signal
	tr := cfg.Generate(5)
	counts := tr.BatchCounts()
	var afternoon, predawn float64
	var na, np int
	for p, c := range counts {
		h := trace.HourOfDay(p)
		if h >= 13 && h < 17 {
			afternoon += float64(c)
			na++
		}
		if h >= 1 && h < 5 {
			predawn += float64(c)
			np++
		}
	}
	if afternoon/float64(na) <= predawn/float64(np)*1.3 {
		t.Fatalf("diurnal pattern too weak: afternoon %v predawn %v",
			afternoon/float64(na), predawn/float64(np))
	}
}

// TestHuaweiGrowth verifies the planted growth trend: late-history daily
// arrivals should exceed early-history arrivals.
func TestHuaweiGrowth(t *testing.T) {
	cfg := HuaweiLike()
	cfg.Days = 40
	cfg.Users = 80
	tr := cfg.Generate(6)
	counts := tr.BatchCounts()
	perDay := trace.PeriodsPerDay
	var early, late float64
	for p, c := range counts {
		d := p / perDay
		if d < 8 {
			early += float64(c)
		}
		if d >= 32 {
			late += float64(c)
		}
	}
	if late <= early*1.3 {
		t.Fatalf("growth not planted: early %v late %v", early, late)
	}
}

// TestHuaweiLifetimeRegime verifies early-history lifetimes are longer.
func TestHuaweiLifetimeRegime(t *testing.T) {
	cfg := HuaweiLike()
	cfg.Days = 40
	cfg.Users = 80
	tr := cfg.Generate(8)
	perDay := trace.PeriodsPerDay
	var earlySum, lateSum float64
	var earlyN, lateN int
	for _, vm := range tr.VMs {
		d := vm.Start / perDay
		if d < 10 {
			earlySum += math.Log(vm.Duration)
			earlyN++
		}
		if d >= 32 {
			lateSum += math.Log(vm.Duration)
			lateN++
		}
	}
	if earlySum/float64(earlyN) <= lateSum/float64(lateN)+0.2 {
		t.Fatalf("lifetime regime shift not planted: early %v late %v",
			earlySum/float64(earlyN), lateSum/float64(lateN))
	}
}

func TestStandardSplit(t *testing.T) {
	train, dev, test := StandardSplit(30)
	if train.Start != 0 || train.End != 21*trace.PeriodsPerDay {
		t.Fatalf("train = %+v", train)
	}
	if dev.Start != train.End || test.Start != dev.End {
		t.Fatal("windows must be contiguous")
	}
	if test.End != 30*trace.PeriodsPerDay {
		t.Fatalf("test = %+v", test)
	}
}

func TestGenerateBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Config{}.Generate(1)
}
