package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks the CSV parser never panics and that anything it
// accepts round-trips.
func FuzzReadCSV(f *testing.F) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("id,user,flavor,start_period,duration_s,censored\n")
	f.Add("garbage")
	f.Add("id,user,flavor,start_period,duration_s,censored\n0,0,0,0,-1,false\n")
	f.Fuzz(func(t *testing.T, data string) {
		fs := twoFlavors()
		got, err := ReadCSV(strings.NewReader(data), fs, 1000)
		if err != nil {
			return
		}
		// Accepted input must be a valid trace and survive a round trip.
		if err := got.Validate(); err != nil {
			t.Fatalf("accepted invalid trace: %v", err)
		}
		var out bytes.Buffer
		if err := got.WriteCSV(&out); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		again, err := ReadCSV(&out, fs, 1000)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(again.VMs) != len(got.VMs) {
			t.Fatalf("round trip changed VM count")
		}
	})
}

// FuzzReadJSON checks the JSON parser never panics and validates
// whatever it accepts.
func FuzzReadJSON(f *testing.F) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"version":1,"periods":1,"flavors":[],"vms":[]}`)
	f.Add(`{"version":2}`)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, data string) {
		got, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("accepted invalid trace: %v", err)
		}
	})
}
