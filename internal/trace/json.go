package trace

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
)

// jsonTrace is the self-describing JSON wire format: unlike the CSV
// form, it carries the flavor catalog and window length, so a trace can
// be reconstructed without out-of-band metadata.
type jsonTrace struct {
	Version int         `json:"version"`
	Periods int         `json:"periods"`
	Flavors []FlavorDef `json:"flavors"`
	VMs     []jsonVM    `json:"vms"`
}

type jsonVM struct {
	ID       int     `json:"id"`
	User     int     `json:"user"`
	Flavor   int     `json:"flavor"`
	Start    int     `json:"start"`
	Duration float64 `json:"duration_s"`
	Censored bool    `json:"censored,omitempty"`
}

const jsonVersion = 1

// WriteJSON serializes the trace (catalog included) as JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	jt := jsonTrace{
		Version: jsonVersion,
		Periods: t.Periods,
		Flavors: t.Flavors.Defs,
		VMs:     make([]jsonVM, len(t.VMs)),
	}
	for i, vm := range t.VMs {
		jt.VMs[i] = jsonVM{
			ID: vm.ID, User: vm.User, Flavor: vm.Flavor,
			Start: vm.Start, Duration: vm.Duration, Censored: vm.Censored,
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(jt)
}

// ReadJSON parses a trace written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var jt jsonTrace
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("trace: read json: %w", err)
	}
	if jt.Version != jsonVersion {
		return nil, fmt.Errorf("trace: unsupported json version %d", jt.Version)
	}
	t := &Trace{
		Flavors: &FlavorSet{Defs: jt.Flavors},
		Periods: jt.Periods,
	}
	for _, vm := range jt.VMs {
		t.VMs = append(t.VMs, VM{
			ID: vm.ID, User: vm.User, Flavor: vm.Flavor,
			Start: vm.Start, Duration: vm.Duration, Censored: vm.Censored,
		})
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteJSONGz writes the gzip-compressed JSON form — the format for
// sharing multi-million-VM traces.
func (t *Trace) WriteJSONGz(w io.Writer) error {
	gz := gzip.NewWriter(w)
	if err := t.WriteJSON(gz); err != nil {
		gz.Close()
		return err
	}
	return gz.Close()
}

// ReadJSONGz parses a trace written by WriteJSONGz.
func ReadJSONGz(r io.Reader) (*Trace, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("trace: gzip: %w", err)
	}
	defer gz.Close()
	return ReadJSON(gz)
}
