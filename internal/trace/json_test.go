package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Periods != tr.Periods {
		t.Fatalf("periods %d", got.Periods)
	}
	if got.Flavors.K() != tr.Flavors.K() {
		t.Fatalf("flavors %d", got.Flavors.K())
	}
	if got.Flavors.Defs[1].Name != "large" || got.Flavors.Defs[1].CPU != 4 {
		t.Fatalf("catalog lost: %+v", got.Flavors.Defs[1])
	}
	for i := range tr.VMs {
		if got.VMs[i] != tr.VMs[i] {
			t.Fatalf("VM %d: %+v vs %+v", i, got.VMs[i], tr.VMs[i])
		}
	}
}

func TestJSONGzRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.WriteJSONGz(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONGz(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.VMs) != len(tr.VMs) {
		t.Fatalf("VMs %d", len(got.VMs))
	}
	// Compression should actually compress a repetitive trace.
	var plain bytes.Buffer
	if err := tr.WriteJSON(&plain); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= plain.Len() {
		t.Logf("note: gz %d >= plain %d (tiny input)", buf.Len(), plain.Len())
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{bad")); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := ReadJSON(strings.NewReader(`{"version":99}`)); err == nil {
		t.Fatal("expected version error")
	}
	// Invalid trace content (flavor out of range).
	bad := `{"version":1,"periods":2,"flavors":[{"Name":"a","CPU":1,"MemGB":1}],"vms":[{"id":0,"user":0,"flavor":5,"start":0,"duration_s":1}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestReadJSONGzNotGzip(t *testing.T) {
	if _, err := ReadJSONGz(strings.NewReader("plain text")); err == nil {
		t.Fatal("expected gzip error")
	}
}
