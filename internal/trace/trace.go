// Package trace defines the workload data model shared by the whole
// repository: VMs with flavors, users, period-quantized start times and
// possibly-censored lifetimes; batch grouping (user × period, arrival
// ordered, §2 of the paper); observation windows with Figure-3 censoring
// semantics; and CSV (de)serialization.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// PeriodSeconds is the trace time quantum: all start/end times are
// quantized to 5-minute periods, as in the Azure V1 data (§3.1).
const PeriodSeconds = 300

// PeriodsPerHour is the number of periods in one hour.
const PeriodsPerHour = 3600 / PeriodSeconds

// PeriodsPerDay is the number of periods in one day.
const PeriodsPerDay = 86400 / PeriodSeconds

// FlavorDef is one VM flavor: a named CPU/memory bundle.
type FlavorDef struct {
	Name  string
	CPU   float64 // virtual cores
	MemGB float64
}

// FlavorSet is the catalog of flavors for a cloud.
type FlavorSet struct {
	Defs []FlavorDef
}

// K returns the number of flavors.
func (fs *FlavorSet) K() int { return len(fs.Defs) }

// VM is a single virtual machine demand record.
type VM struct {
	ID       int
	User     int
	Flavor   int     // index into the trace's FlavorSet
	Start    int     // start period index
	Duration float64 // lifetime in seconds; if Censored, observed runtime so far
	Censored bool
}

// EndSeconds returns the VM's end time in seconds from the trace origin
// (start-of-period + duration). For censored VMs this is the censoring
// time.
func (v VM) EndSeconds() float64 {
	return float64(v.Start)*PeriodSeconds + v.Duration
}

// Trace is an ordered collection of VMs over [0, Periods) periods.
// VMs are sorted by start period; within a period the slice order is the
// arrival (generative) order, with each user's batch contiguous.
type Trace struct {
	Flavors *FlavorSet
	Periods int
	VMs     []VM
}

// HourOfDay returns the 0-based hour-of-day of period p.
func HourOfDay(p int) int { return (p / PeriodsPerHour) % 24 }

// DayOfWeek returns the 0-based day-of-week of period p.
func DayOfWeek(p int) int { return (p / PeriodsPerDay) % 7 }

// DayOfHistory returns the 0-based day index of period p.
func DayOfHistory(p int) int { return p / PeriodsPerDay }

// Days returns the window length in (fractional) days.
func (t *Trace) Days() float64 { return float64(t.Periods) / float64(PeriodsPerDay) }

// Batch is the set of VMs submitted by one user within one period,
// in arrival order. Indices refer to Trace.VMs.
type Batch struct {
	User    int
	Indices []int
}

// PeriodBatches groups the trace's VMs into per-period, arrival-ordered
// batches. A batch is a maximal run of same-user VMs within one period
// (§2: jobs from the same user within the same period, contiguous in
// generative order).
func (t *Trace) PeriodBatches() [][]Batch {
	out := make([][]Batch, t.Periods)
	var cur *Batch
	curPeriod := -1
	for i, vm := range t.VMs {
		if vm.Start < 0 || vm.Start >= t.Periods {
			panic(fmt.Sprintf("trace: VM %d starts at period %d outside [0,%d)", vm.ID, vm.Start, t.Periods))
		}
		if vm.Start != curPeriod || cur == nil || cur.User != vm.User {
			curPeriod = vm.Start
			out[curPeriod] = append(out[curPeriod], Batch{User: vm.User})
			cur = &out[curPeriod][len(out[curPeriod])-1]
		}
		cur.Indices = append(cur.Indices, i)
	}
	return out
}

// BatchCounts returns the number of batches in each period.
func (t *Trace) BatchCounts() []int {
	pb := t.PeriodBatches()
	out := make([]int, len(pb))
	for p, batches := range pb {
		out[p] = len(batches)
	}
	return out
}

// ArrivalCounts returns the number of individual VM arrivals per period.
func (t *Trace) ArrivalCounts() []int {
	out := make([]int, t.Periods)
	for _, vm := range t.VMs {
		out[vm.Start]++
	}
	return out
}

// Window is a half-open period interval [Start, End).
type Window struct {
	Start, End int
}

// Periods returns the window length in periods.
func (w Window) Periods() int { return w.End - w.Start }

// Days returns the window length in fractional days.
func (w Window) Days() float64 { return float64(w.Periods()) / float64(PeriodsPerDay) }

// Slice extracts the sub-trace of VMs that *start* within w, re-based so
// the window start becomes period 0, and right-censors any VM still
// running at the end of the window (Figure 3). VMs already running at
// the window start are excluded by construction (they started earlier),
// avoiding survivorship bias as in §3.1. extraSeconds extends the
// censoring horizon beyond the window end (the Huawei test-window
// procedure of §3.2, which keeps monitoring for two months); pass 0 for
// the plain Figure-3 behaviour.
func (t *Trace) Slice(w Window, extraSeconds float64) *Trace {
	if w.Start < 0 || w.End > t.Periods || w.Start >= w.End {
		panic(fmt.Sprintf("trace: bad window %+v for %d periods", w, t.Periods))
	}
	horizon := float64(w.End)*PeriodSeconds + extraSeconds
	out := &Trace{Flavors: t.Flavors, Periods: w.Periods()}
	for _, vm := range t.VMs {
		if vm.Start < w.Start || vm.Start >= w.End {
			continue
		}
		nv := vm
		nv.Start = vm.Start - w.Start
		end := vm.EndSeconds()
		if vm.Censored || end >= horizon {
			nv.Censored = true
			obs := horizon - float64(vm.Start)*PeriodSeconds
			if vm.Censored && vm.Duration < obs {
				obs = vm.Duration // source observation ended earlier
			}
			nv.Duration = obs
		}
		out.VMs = append(out.VMs, nv)
	}
	return out
}

// Stats summarizes a trace for Table 1.
type Stats struct {
	Days        float64
	VMs         int
	Censored    int
	Batches     int
	MeanBatch   float64
	TotalCPUhrs float64
}

// ComputeStats returns summary statistics for the trace.
func (t *Trace) ComputeStats() Stats {
	s := Stats{Days: t.Days(), VMs: len(t.VMs)}
	var jobs int
	for _, vm := range t.VMs {
		if vm.Censored {
			s.Censored++
		}
		s.TotalCPUhrs += t.Flavors.Defs[vm.Flavor].CPU * vm.Duration / 3600
		jobs++
	}
	for _, c := range t.BatchCounts() {
		s.Batches += c
	}
	if s.Batches > 0 {
		s.MeanBatch = float64(jobs) / float64(s.Batches)
	}
	return s
}

// SortVMs re-establishes the canonical ordering (by start period,
// preserving relative order within periods) and reassigns IDs.
func (t *Trace) SortVMs() {
	sort.SliceStable(t.VMs, func(i, j int) bool { return t.VMs[i].Start < t.VMs[j].Start })
	for i := range t.VMs {
		t.VMs[i].ID = i
	}
}

// Validate checks trace invariants: VM periods in range, flavors in
// range, non-negative durations.
func (t *Trace) Validate() error {
	for i, vm := range t.VMs {
		if vm.Start < 0 || vm.Start >= t.Periods {
			return fmt.Errorf("trace: VM %d period %d outside [0,%d)", i, vm.Start, t.Periods)
		}
		if vm.Flavor < 0 || vm.Flavor >= t.Flavors.K() {
			return fmt.Errorf("trace: VM %d flavor %d outside [0,%d)", i, vm.Flavor, t.Flavors.K())
		}
		if vm.Duration < 0 {
			return fmt.Errorf("trace: VM %d negative duration %v", i, vm.Duration)
		}
		if i > 0 && t.VMs[i].Start < t.VMs[i-1].Start {
			return fmt.Errorf("trace: VMs out of order at %d", i)
		}
	}
	return nil
}

// WriteCSV serializes the trace VMs as CSV with a header row.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "user", "flavor", "start_period", "duration_s", "censored"}); err != nil {
		return err
	}
	for _, vm := range t.VMs {
		rec := []string{
			strconv.Itoa(vm.ID),
			strconv.Itoa(vm.User),
			strconv.Itoa(vm.Flavor),
			strconv.Itoa(vm.Start),
			strconv.FormatFloat(vm.Duration, 'g', -1, 64),
			strconv.FormatBool(vm.Censored),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV. The caller supplies the
// flavor catalog and window length, which the CSV does not carry.
func ReadCSV(r io.Reader, flavors *FlavorSet, periods int) (*Trace, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read csv: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("trace: empty csv")
	}
	t := &Trace{Flavors: flavors, Periods: periods}
	for i, rec := range recs[1:] {
		if len(rec) != 6 {
			return nil, fmt.Errorf("trace: row %d has %d fields", i, len(rec))
		}
		id, err1 := strconv.Atoi(rec[0])
		user, err2 := strconv.Atoi(rec[1])
		flavor, err3 := strconv.Atoi(rec[2])
		start, err4 := strconv.Atoi(rec[3])
		dur, err5 := strconv.ParseFloat(rec[4], 64)
		cens, err6 := strconv.ParseBool(rec[5])
		for _, e := range []error{err1, err2, err3, err4, err5, err6} {
			if e != nil {
				return nil, fmt.Errorf("trace: row %d: %w", i, e)
			}
		}
		t.VMs = append(t.VMs, VM{ID: id, User: user, Flavor: flavor, Start: start, Duration: dur, Censored: cens})
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
