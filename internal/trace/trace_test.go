package trace

import (
	"bytes"
	"strings"
	"testing"
)

func twoFlavors() *FlavorSet {
	return &FlavorSet{Defs: []FlavorDef{
		{Name: "small", CPU: 1, MemGB: 2},
		{Name: "large", CPU: 4, MemGB: 16},
	}}
}

func sample() *Trace {
	return &Trace{
		Flavors: twoFlavors(),
		Periods: 10,
		VMs: []VM{
			{ID: 0, User: 1, Flavor: 0, Start: 0, Duration: 600},
			{ID: 1, User: 1, Flavor: 0, Start: 0, Duration: 700},
			{ID: 2, User: 2, Flavor: 1, Start: 0, Duration: 100},
			{ID: 3, User: 1, Flavor: 1, Start: 0, Duration: 50},
			{ID: 4, User: 3, Flavor: 0, Start: 2, Duration: 4000},
			{ID: 5, User: 3, Flavor: 0, Start: 5, Duration: 86400 * 2},
		},
	}
}

func TestTemporalHelpers(t *testing.T) {
	if HourOfDay(0) != 0 || HourOfDay(PeriodsPerHour) != 1 || HourOfDay(24*PeriodsPerHour) != 0 {
		t.Fatal("HourOfDay wrong")
	}
	if DayOfWeek(0) != 0 || DayOfWeek(PeriodsPerDay*8) != 1 {
		t.Fatal("DayOfWeek wrong")
	}
	if DayOfHistory(PeriodsPerDay*3+5) != 3 {
		t.Fatal("DayOfHistory wrong")
	}
}

func TestPeriodBatches(t *testing.T) {
	tr := sample()
	pb := tr.PeriodBatches()
	if len(pb) != 10 {
		t.Fatalf("got %d period lists", len(pb))
	}
	// Period 0: user1 x2, user2 x1, user1 x1 -> 3 batches (second user-1
	// run is a separate batch since it is non-contiguous).
	if len(pb[0]) != 3 {
		t.Fatalf("period 0 has %d batches, want 3", len(pb[0]))
	}
	if pb[0][0].User != 1 || len(pb[0][0].Indices) != 2 {
		t.Fatalf("first batch wrong: %+v", pb[0][0])
	}
	if pb[0][2].User != 1 || len(pb[0][2].Indices) != 1 {
		t.Fatalf("third batch wrong: %+v", pb[0][2])
	}
	if len(pb[1]) != 0 || len(pb[2]) != 1 {
		t.Fatal("empty/later periods wrong")
	}
}

func TestBatchAndArrivalCounts(t *testing.T) {
	tr := sample()
	bc := tr.BatchCounts()
	if bc[0] != 3 || bc[2] != 1 || bc[5] != 1 || bc[1] != 0 {
		t.Fatalf("batch counts: %v", bc)
	}
	ac := tr.ArrivalCounts()
	if ac[0] != 4 || ac[2] != 1 {
		t.Fatalf("arrival counts: %v", ac)
	}
}

func TestSliceCensorsAtWindowEnd(t *testing.T) {
	tr := sample()
	// Window [0, 4): VM 4 starts at period 2 with duration 4000s; window
	// end is 4*300=1200s; VM4 end = 600+4000 = 4600 >= 1200 -> censored
	// with observed duration 1200-600 = 600.
	sub := tr.Slice(Window{Start: 0, End: 4}, 0)
	if len(sub.VMs) != 5 {
		t.Fatalf("got %d VMs, want 5", len(sub.VMs))
	}
	last := sub.VMs[4]
	if !last.Censored || last.Duration != 600 {
		t.Fatalf("VM4 censoring wrong: %+v", last)
	}
	// VM 0 (600s from period 0) ends at 600 < 1200: uncensored.
	if sub.VMs[0].Censored {
		t.Fatal("VM0 should be uncensored")
	}
}

func TestSliceExtraSeconds(t *testing.T) {
	tr := sample()
	// With a 1-hour extension the same VM survives observation.
	sub := tr.Slice(Window{Start: 0, End: 4}, 3600)
	if sub.VMs[4].Censored {
		t.Fatalf("VM4 should be uncensored with extended horizon: %+v", sub.VMs[4])
	}
}

func TestSliceRebases(t *testing.T) {
	tr := sample()
	sub := tr.Slice(Window{Start: 2, End: 8}, 0)
	if len(sub.VMs) != 2 {
		t.Fatalf("got %d VMs", len(sub.VMs))
	}
	if sub.VMs[0].Start != 0 || sub.VMs[1].Start != 3 {
		t.Fatalf("rebasing wrong: %d %d", sub.VMs[0].Start, sub.VMs[1].Start)
	}
	if sub.Periods != 6 {
		t.Fatalf("periods = %d", sub.Periods)
	}
}

func TestSliceKeepsEarlierCensoring(t *testing.T) {
	tr := sample()
	tr.VMs[0].Censored = true
	tr.VMs[0].Duration = 100 // source observation ended at 100s
	sub := tr.Slice(Window{Start: 0, End: 10}, 0)
	if !sub.VMs[0].Censored || sub.VMs[0].Duration != 100 {
		t.Fatalf("earlier censoring should be kept: %+v", sub.VMs[0])
	}
}

func TestSliceBadWindowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sample().Slice(Window{Start: 5, End: 3}, 0)
}

func TestComputeStats(t *testing.T) {
	tr := sample()
	s := tr.ComputeStats()
	if s.VMs != 6 || s.Censored != 0 {
		t.Fatalf("stats: %+v", s)
	}
	if s.Batches != 5 {
		t.Fatalf("batches = %d, want 5", s.Batches)
	}
	if s.MeanBatch != 6.0/5.0 {
		t.Fatalf("mean batch = %v", s.MeanBatch)
	}
	if s.Days != 10.0/float64(PeriodsPerDay) {
		t.Fatalf("days = %v", s.Days)
	}
}

func TestValidate(t *testing.T) {
	tr := sample()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := sample()
	bad.VMs[0].Flavor = 99
	if bad.Validate() == nil {
		t.Fatal("expected flavor error")
	}
	bad2 := sample()
	bad2.VMs[0].Start = -1
	if bad2.Validate() == nil {
		t.Fatal("expected period error")
	}
	bad3 := sample()
	bad3.VMs[0].Duration = -5
	if bad3.Validate() == nil {
		t.Fatal("expected duration error")
	}
}

func TestSortVMs(t *testing.T) {
	tr := sample()
	tr.VMs[0], tr.VMs[5] = tr.VMs[5], tr.VMs[0]
	tr.SortVMs()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, vm := range tr.VMs {
		if vm.ID != i {
			t.Fatalf("IDs not reassigned: %d at %d", vm.ID, i)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := sample()
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, tr.Flavors, tr.Periods)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.VMs) != len(tr.VMs) {
		t.Fatalf("got %d VMs", len(got.VMs))
	}
	for i := range tr.VMs {
		if got.VMs[i] != tr.VMs[i] {
			t.Fatalf("VM %d mismatch: %+v vs %+v", i, got.VMs[i], tr.VMs[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	fs := twoFlavors()
	if _, err := ReadCSV(strings.NewReader(""), fs, 10); err == nil {
		t.Fatal("expected empty error")
	}
	badRow := "id,user,flavor,start_period,duration_s,censored\nx,1,0,0,5,false\n"
	if _, err := ReadCSV(strings.NewReader(badRow), fs, 10); err == nil {
		t.Fatal("expected parse error")
	}
	outOfRange := "id,user,flavor,start_period,duration_s,censored\n0,1,9,0,5,false\n"
	if _, err := ReadCSV(strings.NewReader(outOfRange), fs, 10); err == nil {
		t.Fatal("expected validate error")
	}
}

func TestEndSeconds(t *testing.T) {
	vm := VM{Start: 2, Duration: 100}
	if vm.EndSeconds() != 700 {
		t.Fatalf("EndSeconds = %v", vm.EndSeconds())
	}
}
