package trace

import (
	"fmt"
	"sort"
)

// FilterUsers returns the sub-trace of VMs whose user satisfies keep,
// preserving order. The result shares the flavor catalog.
func (t *Trace) FilterUsers(keep func(user int) bool) *Trace {
	out := &Trace{Flavors: t.Flavors, Periods: t.Periods}
	for _, vm := range t.VMs {
		if keep(vm.User) {
			out.VMs = append(out.VMs, vm)
		}
	}
	return out
}

// TopUsers returns the n users with the most VMs, busiest first.
func (t *Trace) TopUsers(n int) []int {
	counts := map[int]int{}
	for _, vm := range t.VMs {
		counts[vm.User]++
	}
	users := make([]int, 0, len(counts))
	for u := range counts {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool {
		if counts[users[i]] != counts[users[j]] {
			return counts[users[i]] > counts[users[j]]
		}
		return users[i] < users[j] // deterministic tie-break
	})
	if n > len(users) {
		n = len(users)
	}
	return users[:n]
}

// Merge combines several traces over the same catalog and window into
// one, interleaving per period while preserving each source's
// within-period order (source order breaks ties). User IDs are remapped
// per source so distinct sources never share a user; IDs are
// reassigned. Useful for combining generated shards or overlaying a
// synthetic stress workload onto a base trace.
func Merge(traces ...*Trace) (*Trace, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("trace: Merge of nothing")
	}
	first := traces[0]
	for i, tr := range traces[1:] {
		if tr.Periods != first.Periods {
			return nil, fmt.Errorf("trace: Merge window mismatch: %d vs %d periods", tr.Periods, first.Periods)
		}
		if tr.Flavors.K() != first.Flavors.K() {
			return nil, fmt.Errorf("trace: Merge catalog mismatch at source %d", i+1)
		}
	}
	out := &Trace{Flavors: first.Flavors, Periods: first.Periods}
	// Per-source cursors walk each trace period by period.
	cursors := make([]int, len(traces))
	userBase := make([]int, len(traces))
	base := 0
	for i, tr := range traces {
		userBase[i] = base
		maxUser := -1
		for _, vm := range tr.VMs {
			if vm.User > maxUser {
				maxUser = vm.User
			}
		}
		base += maxUser + 1
	}
	for p := 0; p < first.Periods; p++ {
		for i, tr := range traces {
			for cursors[i] < len(tr.VMs) && tr.VMs[cursors[i]].Start == p {
				vm := tr.VMs[cursors[i]]
				vm.User += userBase[i]
				vm.ID = len(out.VMs)
				out.VMs = append(out.VMs, vm)
				cursors[i]++
			}
		}
	}
	for i, tr := range traces {
		if cursors[i] != len(tr.VMs) {
			return nil, fmt.Errorf("trace: Merge source %d not sorted by period", i)
		}
	}
	return out, nil
}

// CountUsers returns the number of distinct users in the trace.
func (t *Trace) CountUsers() int {
	seen := map[int]bool{}
	for _, vm := range t.VMs {
		seen[vm.User] = true
	}
	return len(seen)
}
