package trace

import "testing"

func TestFilterUsers(t *testing.T) {
	tr := sample()
	only1 := tr.FilterUsers(func(u int) bool { return u == 1 })
	if len(only1.VMs) != 3 {
		t.Fatalf("got %d VMs", len(only1.VMs))
	}
	for _, vm := range only1.VMs {
		if vm.User != 1 {
			t.Fatal("wrong user")
		}
	}
	if only1.Periods != tr.Periods || only1.Flavors != tr.Flavors {
		t.Fatal("metadata lost")
	}
}

func TestTopUsers(t *testing.T) {
	tr := sample() // user 1: 3 VMs, user 3: 2, user 2: 1
	top := tr.TopUsers(2)
	if len(top) != 2 || top[0] != 1 || top[1] != 3 {
		t.Fatalf("top = %v", top)
	}
	all := tr.TopUsers(99)
	if len(all) != 3 {
		t.Fatalf("all = %v", all)
	}
}

func TestCountUsers(t *testing.T) {
	if got := sample().CountUsers(); got != 3 {
		t.Fatalf("users = %d", got)
	}
}

func TestMergeInterleavesAndRemaps(t *testing.T) {
	a := sample()
	b := sample()
	merged, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.VMs) != len(a.VMs)+len(b.VMs) {
		t.Fatalf("merged %d VMs", len(merged.VMs))
	}
	if err := merged.Validate(); err != nil {
		t.Fatal(err)
	}
	// Users from distinct sources must not collide: sample() has users
	// 1..3, so the second source should occupy 4+.
	if merged.CountUsers() != 6 {
		t.Fatalf("merged users = %d, want 6", merged.CountUsers())
	}
	// Period-0 VMs from source a come before source b's.
	if merged.VMs[0].User != a.VMs[0].User {
		t.Fatal("source order not preserved within period")
	}
}

func TestMergeErrors(t *testing.T) {
	if _, err := Merge(); err == nil {
		t.Fatal("expected empty error")
	}
	a := sample()
	short := sample()
	short.Periods = 5
	// Drop VMs outside the shorter window so the mismatch is the window,
	// not validity.
	short.VMs = short.VMs[:4]
	if _, err := Merge(a, short); err == nil {
		t.Fatal("expected window mismatch error")
	}
	diffCat := sample()
	diffCat.Flavors = &FlavorSet{Defs: []FlavorDef{{Name: "x", CPU: 1, MemGB: 1}}}
	diffCat.VMs = diffCat.VMs[:0]
	if _, err := Merge(a, diffCat); err == nil {
		t.Fatal("expected catalog mismatch error")
	}
	unsorted := sample()
	unsorted.VMs[0], unsorted.VMs[5] = unsorted.VMs[5], unsorted.VMs[0]
	if _, err := Merge(unsorted); err == nil {
		t.Fatal("expected unsorted error")
	}
}
