// Package tune implements the paper's §4.2 hyperparameter methodology:
// "the elastic net regularization penalty for Poisson regression, and
// the weight decay and learning rate for the LSTM resource/lifetime
// models, are tuned on the corresponding development sets ... for their
// stage-specific (and cloud-specific) development data." It provides
// grid searches for each stage, scoring candidates on the dev window.
package tune

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/glm"
	"repro/internal/mat"
	"repro/internal/survival"
	"repro/internal/trace"
)

// Result is one evaluated candidate.
type Result struct {
	Params map[string]float64
	Score  float64 // dev loss (lower is better)
}

// byScore sorts results ascending by score.
func byScore(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Score < rs[j].Score })
}

// ArrivalGrid tunes the Poisson regression's ridge penalty on dev-window
// NLL (the stage-1 search). Returns all candidates, best first.
func ArrivalGrid(train, dev *trace.Trace, devOffset int, l2s []float64) ([]Result, error) {
	if len(l2s) == 0 {
		return nil, fmt.Errorf("tune: empty L2 grid")
	}
	devCounts := dev.BatchCounts()
	var results []Result
	for _, l2 := range l2s {
		m, err := core.TrainArrival(train, core.ArrivalOptions{
			Kind: core.BatchArrivals, UseDOH: true, L2: l2,
		})
		if err != nil {
			return nil, fmt.Errorf("tune: l2=%v: %w", l2, err)
		}
		// Dev NLL with the actual day encoded (teacher-forced).
		var nll float64
		for p, c := range devCounts {
			abs := devOffset + p
			mu := m.Rate(abs, trace.DayOfHistory(abs))
			mu = math.Max(mu, 1e-9)
			nll += mu - float64(c)*math.Log(mu)
		}
		results = append(results, Result{
			Params: map[string]float64{"l2": l2},
			Score:  nll / float64(len(devCounts)),
		})
	}
	byScore(results)
	return results, nil
}

// FlavorGrid tunes the flavor LSTM's learning rate and weight decay on
// dev-window NLL. base supplies the non-tuned fields (hidden size,
// epochs, ...); Dev/DevOffset in base are ignored (the search scores dev
// explicitly, without per-epoch snapshots, so candidates are compared on
// their final weights).
func FlavorGrid(train, dev *trace.Trace, devOffset int, base core.TrainConfig, lrs, wds []float64) ([]Result, error) {
	if len(lrs) == 0 || len(wds) == 0 {
		return nil, fmt.Errorf("tune: empty grid")
	}
	devToks := core.FlavorTokens(dev)
	var results []Result
	for _, lr := range lrs {
		for _, wd := range wds {
			cfg := base
			cfg.LR = lr
			cfg.WeightDecay = wd
			cfg.Dev = nil
			m := core.TrainFlavor(train, cfg)
			ev := core.EvaluateFlavor(core.NewLSTMFlavorPredictor(m), devToks, devOffset)
			results = append(results, Result{
				Params: map[string]float64{"lr": lr, "wd": wd},
				Score:  ev.NLL,
			})
		}
	}
	byScore(results)
	return results, nil
}

// LifetimeGrid tunes the lifetime LSTM's learning rate and weight decay
// on dev-window BCE.
func LifetimeGrid(train, dev *trace.Trace, devOffset int, bins survival.Bins, base core.TrainConfig, lrs, wds []float64) ([]Result, error) {
	if len(lrs) == 0 || len(wds) == 0 {
		return nil, fmt.Errorf("tune: empty grid")
	}
	devSteps := core.LifetimeSteps(dev, bins)
	var results []Result
	for _, lr := range lrs {
		for _, wd := range wds {
			cfg := base
			cfg.LR = lr
			cfg.WeightDecay = wd
			cfg.Dev = nil
			m := core.TrainLifetime(train, bins, cfg)
			ev := core.EvaluateLifetime(core.NewLSTMLifetimePredictor(m), devSteps, bins, devOffset)
			results = append(results, Result{
				Params: map[string]float64{"lr": lr, "wd": wd},
				Score:  ev.BCE,
			})
		}
	}
	byScore(results)
	return results, nil
}

// DOHGeomGrid tunes the geometric DOH-sampling success probability
// (§2.1.2: "with success probability tuned on development data") by
// maximizing dev-window 90% interval coverage of batch counts.
func DOHGeomGrid(train, dev *trace.Trace, devOffset int, ps []float64, samples int) ([]Result, error) {
	if len(ps) == 0 {
		return nil, fmt.Errorf("tune: empty p grid")
	}
	if samples <= 0 {
		samples = 200
	}
	var results []Result
	for _, p := range ps {
		if p <= 0 || p > 1 {
			return nil, fmt.Errorf("tune: p=%v outside (0,1]", p)
		}
		cov, err := dohCoverage(train, dev, devOffset, p, samples)
		if err != nil {
			return nil, err
		}
		results = append(results, Result{
			Params: map[string]float64{"p": p},
			Score:  1 - cov, // lower is better
		})
	}
	byScore(results)
	return results, nil
}

// dohCoverage computes dev coverage of the 90% interval under geometric
// DOH sampling with success probability p.
func dohCoverage(train, dev *trace.Trace, devOffset int, p float64, samples int) (float64, error) {
	m, err := core.TrainArrival(train, core.ArrivalOptions{
		Kind: core.BatchArrivals, UseDOH: true,
	})
	if err != nil {
		return 0, err
	}
	m.DOH.GeomP = p
	m.DOH.Mode = 1 // features.DOHGeometric
	return core.ArrivalCoverageOn(m, dev, devOffset, samples), nil
}

// ElasticNetGrid tunes a Poisson regression's full elastic-net penalty
// (l1, l2) on held-out NLL given raw feature/count matrices — the
// general-purpose form used outside the arrival pipeline.
func ElasticNetGrid(x *mat.Dense, y []float64, xDev *mat.Dense, yDev []float64, l1s, l2s []float64) ([]Result, error) {
	if len(l1s) == 0 || len(l2s) == 0 {
		return nil, fmt.Errorf("tune: empty grid")
	}
	var results []Result
	for _, l1 := range l1s {
		for _, l2 := range l2s {
			opt := glm.Options{Solver: glm.ProxGrad, L1: l1, L2: l2, MaxIter: 2000}
			if l1 == 0 {
				opt = glm.Options{Solver: glm.IRLS, L2: l2}
			}
			m, err := glm.Fit(x, y, opt)
			if err != nil {
				return nil, fmt.Errorf("tune: l1=%v l2=%v: %w", l1, l2, err)
			}
			results = append(results, Result{
				Params: map[string]float64{"l1": l1, "l2": l2},
				Score:  m.NLL(xDev, yDev),
			})
		}
	}
	byScore(results)
	return results, nil
}
