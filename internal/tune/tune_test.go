package tune

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/glm"
	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/survival"
	"repro/internal/synth"
	"repro/internal/trace"
)

var (
	dataOnce sync.Once
	trainTr  *trace.Trace
	devTr    *trace.Trace
	devOff   int
)

func data(t *testing.T) (*trace.Trace, *trace.Trace, int) {
	t.Helper()
	dataOnce.Do(func() {
		cfg := synth.AzureLike()
		cfg.Days = 4
		cfg.Users = 80
		cfg.BaseRate = 2
		full := cfg.Generate(77)
		devOff = 3 * trace.PeriodsPerDay
		trainTr = full.Slice(trace.Window{Start: 0, End: devOff}, 0)
		devTr = full.Slice(trace.Window{Start: devOff, End: full.Periods}, 0)
	})
	return trainTr, devTr, devOff
}

func TestArrivalGrid(t *testing.T) {
	train, dev, off := data(t)
	results, err := ArrivalGrid(train, dev, off, []float64{0.01, 0.1, 10, 10000})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results %d", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].Score < results[i-1].Score {
			t.Fatal("results not sorted by score")
		}
	}
	// An absurdly strong ridge should not win: it flattens the rate to
	// the global mean.
	if results[0].Params["l2"] == 10000 {
		t.Errorf("degenerate penalty won the grid: %+v", results)
	}
}

func TestArrivalGridEmpty(t *testing.T) {
	train, dev, off := data(t)
	if _, err := ArrivalGrid(train, dev, off, nil); err == nil {
		t.Fatal("expected empty-grid error")
	}
}

func TestFlavorGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("trains several LSTMs")
	}
	train, dev, off := data(t)
	base := core.TrainConfig{Hidden: 12, Layers: 1, SeqLen: 48, BatchSize: 8, Epochs: 8, Seed: 1}
	results, err := FlavorGrid(train, dev, off, base, []float64{8e-3, 1e-5}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results %d", len(results))
	}
	// A vanishing learning rate cannot win: the network stays at its
	// random initialization.
	if results[0].Params["lr"] == 1e-5 {
		t.Errorf("untrained candidate won: %+v", results)
	}
}

func TestLifetimeGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("trains several LSTMs")
	}
	train, dev, off := data(t)
	bins := survival.PaperBins()
	base := core.TrainConfig{Hidden: 12, Layers: 1, SeqLen: 48, BatchSize: 8, Epochs: 8, Seed: 1}
	results, err := LifetimeGrid(train, dev, off, bins, base, []float64{8e-3, 1e-5}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Params["lr"] == 1e-5 {
		t.Errorf("untrained candidate won: %+v", results)
	}
}

func TestDOHGeomGrid(t *testing.T) {
	train, dev, off := data(t)
	results, err := DOHGeomGrid(train, dev, off, []float64{1.0 / 7.0, 0.9}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results %d", len(results))
	}
	for _, r := range results {
		if r.Score < 0 || r.Score > 1 {
			t.Fatalf("score out of range: %+v", r)
		}
	}
	if _, err := DOHGeomGrid(train, dev, off, []float64{2}, 10); err == nil {
		t.Fatal("expected p-range error")
	}
}

func TestElasticNetGrid(t *testing.T) {
	g := rng.New(5)
	mk := func(n int) (*mat.Dense, []float64) {
		x := mat.NewDense(n, 3)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			row := x.Row(i)
			for j := range row {
				row[j] = g.Uniform(-1, 1)
			}
			mu := math.Exp(0.8*row[0] - 0.5*row[1] + 1)
			y[i] = float64(g.Poisson(mu))
		}
		return x, y
	}
	xTr, yTr := mk(1500)
	xDev, yDev := mk(500)
	results, err := ElasticNetGrid(xTr, yTr, xDev, yDev, []float64{0, 5}, []float64{0.01, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results %d", len(results))
	}
	// Extreme ridge must lose to the light penalties.
	if results[0].Params["l2"] == 1000 {
		t.Errorf("over-penalized candidate won: %+v", results[0])
	}
	// Sanity: the winner's dev NLL is no worse than an unregularized fit.
	base, err := glm.Fit(xTr, yTr, glm.Options{Solver: glm.IRLS})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Score > base.NLL(xDev, yDev)+0.05 {
		t.Errorf("grid winner %v worse than unregularized %v", results[0].Score, base.NLL(xDev, yDev))
	}
}
