package workload

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/synth"
)

// Sampler compiles the arrival-process spec into a synth.ArrivalSampler
// drawing per-period batch counts at a scheduled mean lambda. The three
// processes and their count moments (the property-test contracts in
// arrival_test.go):
//
//   - poisson: counts ~ Poisson(lambda); mean lambda, variance lambda.
//   - gamma: a doubly-stochastic (Cox) process — each period's rate is
//     lambda times a unit-mean Gamma(1/cv², cv²) multiplier, then counts
//     are Poisson at that rate. Marginally negative-binomial: mean
//     lambda, variance lambda + (cv·lambda)²; cv is the rate CV, so
//     cv > 0 means burstier-than-Poisson periods.
//   - weibull: a renewal process with Weibull(k, s) interarrival times
//     inside the unit period, shape k solved so the interarrival CV is
//     the spec's cv and scale s so the mean interarrival is 1/lambda.
//     cv < 1 gives regular (underdispersed) arrivals, cv > 1 bursty
//     ones; asymptotically Var/Mean -> cv².
//
// All three draw only through the supplied *rng.RNG, so spec-driven
// generation stays deterministic per seed at any REPRO_PROCS.
func (a ArrivalProcessSpec) Sampler() (synth.ArrivalSampler, error) {
	if err := a.validate("arrival_process"); err != nil {
		return nil, err
	}
	switch a.Process {
	case "poisson":
		return func(g *rng.RNG, lambda float64) int {
			return g.Poisson(lambda)
		}, nil
	case "gamma":
		shape := 1 / (a.CV * a.CV)
		scale := a.CV * a.CV // shape*scale = 1: unit-mean multiplier
		return func(g *rng.RNG, lambda float64) int {
			if lambda <= 0 {
				return 0
			}
			return g.Poisson(lambda * g.Gamma(shape, scale))
		}, nil
	case "weibull":
		k, err := weibullShapeForCV(a.CV)
		if err != nil {
			return nil, err
		}
		meanFactor := math.Gamma(1 + 1/k) // mean of Weibull(k, 1)
		return func(g *rng.RNG, lambda float64) int {
			if lambda <= 0 {
				return 0
			}
			// Renewal count in the unit period: interarrivals are
			// Weibull(k, s) with s*meanFactor = 1/lambda.
			s := 1 / (lambda * meanFactor)
			n := 0
			for t := g.Weibull(k, s); t < 1; t += g.Weibull(k, s) {
				n++
			}
			return n
		}, nil
	}
	return nil, fmt.Errorf("workload: unknown arrival process %q", a.Process)
}

// weibullCV returns the interarrival coefficient of variation of a
// Weibull with shape k (scale cancels).
func weibullCV(k float64) float64 {
	m := math.Gamma(1 + 1/k)
	v := math.Gamma(1+2/k) - m*m
	if v <= 0 { // numerical floor at large k
		return 0
	}
	return math.Sqrt(v) / m
}

// weibullShapeForCV inverts weibullCV by bisection. CV is strictly
// decreasing in k (k=1 is exponential, CV=1); the validated spec range
// [minCV, maxCV] maps comfortably inside the bracket below.
func weibullShapeForCV(cv float64) (float64, error) {
	lo, hi := 0.08, 80.0 // cv(0.08) ≈ 2.6e4, cv(80) ≈ 0.018
	if cv >= weibullCV(lo) || cv <= weibullCV(hi) {
		return 0, fmt.Errorf("workload: weibull cv %v out of invertible range", cv)
	}
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if weibullCV(mid) > cv {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12 {
			break
		}
	}
	return 0.5 * (lo + hi), nil
}
