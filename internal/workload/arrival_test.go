package workload

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/par"
	"repro/internal/rng"
)

// arrivalCases is the property-test grid: every process × 3
// parameterizations, with the analytically expected count mean and
// count CV and precomputed tolerance bands. Expectations:
//
//	poisson        mean = λ, CV = 1/√λ
//	gamma (cv)     mean = λ, CV = √(1/λ + cv²)       (negative binomial)
//	weibull (cv)   mean ≈ λ, CV ≈ cv/√λ              (renewal asymptotics)
//
// The weibull rows carry wider mean bands: an ordinary (non-stationary)
// renewal process has E[N(t)] = λt + (cv²−1)/2 + o(1), so a finite
// period biases the mean by up to |cv²−1|/2 counts.
var arrivalCases = []struct {
	name     string
	spec     ArrivalProcessSpec
	lambda   float64
	wantMean float64
	meanTol  float64
	wantCV   float64
	cvTol    float64
}{
	{"poisson/2", ArrivalProcessSpec{Process: "poisson"}, 2, 2, 0.06, 1 / math.Sqrt2, 0.03},
	{"poisson/8", ArrivalProcessSpec{Process: "poisson"}, 8, 8, 0.12, 1 / math.Sqrt(8), 0.02},
	{"poisson/40", ArrivalProcessSpec{Process: "poisson"}, 40, 40, 0.25, 1 / math.Sqrt(40), 0.01},
	{"gamma/cv0.5", ArrivalProcessSpec{Process: "gamma", CV: 0.5}, 10, 10, 0.25, math.Sqrt(1.0/10 + 0.25), 0.04},
	{"gamma/cv1", ArrivalProcessSpec{Process: "gamma", CV: 1}, 20, 20, 0.8, math.Sqrt(1.0/20 + 1), 0.06},
	{"gamma/cv2", ArrivalProcessSpec{Process: "gamma", CV: 2}, 5, 5, 0.45, math.Sqrt(1.0/5 + 4), 0.15},
	{"weibull/cv0.5", ArrivalProcessSpec{Process: "weibull", CV: 0.5}, 40, 40, 0.8, 0.5 / math.Sqrt(40), 0.03},
	{"weibull/cv1", ArrivalProcessSpec{Process: "weibull", CV: 1}, 40, 40, 0.5, 1 / math.Sqrt(40), 0.03},
	{"weibull/cv1.5", ArrivalProcessSpec{Process: "weibull", CV: 1.5}, 40, 40, 1.5, 1.5 / math.Sqrt(40), 0.06},
}

// TestArrivalSamplerMoments checks each sampler's empirical count mean
// and CV against the analytic bands above over N seeded draws.
func TestArrivalSamplerMoments(t *testing.T) {
	const n = 30000
	for _, tc := range arrivalCases {
		t.Run(tc.name, func(t *testing.T) {
			sampler, err := tc.spec.Sampler()
			if err != nil {
				t.Fatal(err)
			}
			g := rng.New(77)
			var sum, sumSq float64
			for i := 0; i < n; i++ {
				c := sampler(g, tc.lambda)
				if c < 0 {
					t.Fatalf("negative count %d", c)
				}
				x := float64(c)
				sum += x
				sumSq += x * x
			}
			mean := sum / n
			variance := sumSq/n - mean*mean
			cv := math.Sqrt(variance) / mean
			if math.Abs(mean-tc.wantMean) > tc.meanTol {
				t.Errorf("mean = %.4f, want %.4f +- %.3f", mean, tc.wantMean, tc.meanTol)
			}
			if math.Abs(cv-tc.wantCV) > tc.cvTol {
				t.Errorf("count CV = %.4f, want %.4f +- %.3f", cv, tc.wantCV, tc.cvTol)
			}
		})
	}
}

// TestArrivalSamplerDeterministic pins every sampler's exact draw
// sequence to its seed: same seed, same counts; different seed,
// different counts somewhere.
func TestArrivalSamplerDeterministic(t *testing.T) {
	for _, tc := range arrivalCases {
		t.Run(tc.name, func(t *testing.T) {
			sampler, err := tc.spec.Sampler()
			if err != nil {
				t.Fatal(err)
			}
			draw := func(seed int64) []int {
				g := rng.New(seed)
				out := make([]int, 200)
				for i := range out {
					out[i] = sampler(g, tc.lambda)
				}
				return out
			}
			a, b, c := draw(5), draw(5), draw(6)
			differs := false
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("same seed diverged at draw %d: %d vs %d", i, a[i], b[i])
				}
				if a[i] != c[i] {
					differs = true
				}
			}
			if !differs {
				t.Fatal("seeds 5 and 6 produced identical sequences")
			}
		})
	}
}

// TestArrivalZeroLambda: every process returns 0 at lambda <= 0 without
// drawing forever.
func TestArrivalZeroLambda(t *testing.T) {
	for _, tc := range arrivalCases {
		sampler, err := tc.spec.Sampler()
		if err != nil {
			t.Fatal(err)
		}
		g := rng.New(1)
		if got := sampler(g, 0); got != 0 {
			t.Errorf("%s: sampler(0) = %d, want 0", tc.name, got)
		}
	}
}

// TestSpecGenerationProcsInvariant: a compiled mixed-cohort spec
// generates identical trace bytes under REPRO_PROCS=1 and 8 — the
// samplers draw only through the request RNG, so the parallel layer's
// width cannot leak into the stream.
func TestSpecGenerationProcsInvariant(t *testing.T) {
	spec := Preset("mixed")
	spec.Days = 2
	cfg, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	gen := func(procs int) []byte {
		defer par.SetProcs(par.SetProcs(procs))
		tr := cfg.Generate(11)
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	one := gen(1)
	eight := gen(8)
	if !bytes.Equal(one, eight) {
		t.Fatal("spec generation differs between REPRO_PROCS=1 and 8")
	}
}

// TestWeibullShapeInversion: the bisection recovers shapes whose CV
// matches the request to high precision across the validated range.
func TestWeibullShapeInversion(t *testing.T) {
	for _, cv := range []float64{minCV, 0.2, 0.5, 1, 2, 5, maxCV} {
		k, err := weibullShapeForCV(cv)
		if err != nil {
			t.Fatalf("cv=%v: %v", cv, err)
		}
		if got := weibullCV(k); math.Abs(got-cv) > 1e-6*cv {
			t.Errorf("cv=%v: shape %v gives CV %v", cv, k, got)
		}
	}
	if k, err := weibullShapeForCV(1); err != nil || math.Abs(k-1) > 1e-6 {
		t.Errorf("cv=1 should invert to the exponential shape 1, got %v (%v)", k, err)
	}
}
