package workload

import (
	"fmt"
	"math"

	"repro/internal/synth"
	"repro/internal/trace"
)

// Compile lowers a validated spec to a synth.Config. Specs with no
// cohorts compile to the legacy single-population process — the named
// presets reproduce the hardcoded AzureLike()/HuaweiLike() configs
// exactly (pinned by golden_test.go) — while specs with cohorts fill
// every cohort's unset blocks from the base and compile each arrival
// process to its sampler.
func (s *Spec) Compile() (synth.Config, error) {
	if err := s.Validate(); err != nil {
		return synth.Config{}, err
	}
	fs, err := s.Flavors.FlavorSet()
	if err != nil {
		return synth.Config{}, err
	}
	cfg := synth.Config{
		Name:             s.Name,
		Days:             s.Days,
		Users:            s.Users,
		Flavors:          fs,
		BaseRate:         s.Arrival.BaseRate,
		DiurnalAmp:       s.Arrival.DiurnalAmplitude,
		WeekendDip:       s.Arrival.WeekendDip,
		DayEffect:        s.Arrival.DayEffectSigma,
		UserZipf:         s.Population.Zipf,
		FavoriteCount:    s.Population.FavoriteCount,
		Persistence:      s.Population.Persistence,
		BatchSizeMean:    s.Batch.SizeMean,
		RepeatFlavorP:    s.Batch.RepeatFlavorP,
		RepeatLifetimeP:  s.Batch.RepeatLifetimeP,
		TemplateP:        s.Batch.TemplateP,
		LifeMuMin:        math.Log(s.Lifetime.MuMinSeconds),
		LifeMuMax:        math.Log(s.Lifetime.MuMaxSeconds),
		LifeSigma:        s.Lifetime.Sigma,
		FlavorLifeEffect: s.Lifetime.FlavorEffect,
	}
	days := float64(s.Days)
	if s.Arrival.Growth != nil {
		cfg.Growth = s.Arrival.Growth.dayFunc(days)
	}
	if s.Lifetime.Shift != nil {
		cfg.LifeShift = s.Lifetime.Shift.dayFunc(days)
	}
	if len(s.Cohorts) == 0 {
		return cfg, nil
	}

	names := make([]string, fs.K())
	for i, d := range fs.Defs {
		names[i] = d.Name
	}
	// Cohorts that omit "users" split the spec-level pool by rate
	// fraction (at least one user each).
	cohorts := make([]synth.Cohort, len(s.Cohorts))
	for i := range s.Cohorts {
		co := &s.Cohorts[i]
		sampler, err := co.Arrival.Sampler()
		if err != nil {
			return synth.Config{}, err
		}
		subset, err := cohortFlavorSubset(co, names)
		if err != nil {
			return synth.Config{}, err
		}
		users := co.Users
		if users == 0 {
			users = int(math.Round(co.RateFraction * float64(s.Users)))
			if users < 1 {
				users = 1
			}
		}
		batch := s.Batch
		if co.Batch != nil {
			batch = *co.Batch
		}
		pop := s.Population
		if co.Population != nil {
			pop = *co.Population
		}
		muMin, muMax, sigma := s.Lifetime.MuMinSeconds, s.Lifetime.MuMaxSeconds, s.Lifetime.Sigma
		if co.Lifetime != nil {
			muMin, muMax, sigma = co.Lifetime.MuMinSeconds, co.Lifetime.MuMaxSeconds, co.Lifetime.Sigma
		}
		cohorts[i] = synth.Cohort{
			Name:            co.Name,
			RateFraction:    co.RateFraction,
			Users:           users,
			Arrival:         sampler,
			SLOClass:        co.SLOClass,
			UserZipf:        pop.Zipf,
			FavoriteCount:   pop.FavoriteCount,
			Persistence:     pop.Persistence,
			BatchSizeMean:   batch.SizeMean,
			RepeatFlavorP:   batch.RepeatFlavorP,
			RepeatLifetimeP: batch.RepeatLifetimeP,
			TemplateP:       batch.TemplateP,
			LifeMuMin:       math.Log(muMin),
			LifeMuMax:       math.Log(muMax),
			LifeSigma:       sigma,
			FlavorSubset:    subset,
		}
	}
	cfg.Cohorts = cohorts
	return cfg, nil
}

// FlavorSet materializes the spec's flavor catalog.
func (f *FlavorsSpec) FlavorSet() (*trace.FlavorSet, error) {
	switch f.Catalog {
	case "azure16":
		return synth.AzureFlavors(), nil
	case "huawei259":
		return synth.HuaweiFlavors(), nil
	case "":
		fs := &trace.FlavorSet{Defs: make([]trace.FlavorDef, len(f.Defs))}
		for i, d := range f.Defs {
			fs.Defs[i] = trace.FlavorDef{Name: d.Name, CPU: d.CPU, MemGB: d.MemGB}
		}
		return fs, nil
	}
	return nil, fmt.Errorf("workload: unknown flavor catalog %q", f.Catalog)
}

// dayFunc compiles a schedule to the day-indexed multiplier/shift form
// synth.Config carries. The formulas are written to match the hardcoded
// HuaweiLike closures term for term, so a compiled preset is
// bit-identical to the hand-written schedule.
func (sc *ScheduleSpec) dayFunc(days float64) func(day int) float64 {
	switch sc.Kind {
	case "logistic":
		base, amp, steep, mid := sc.Base, sc.Amplitude, sc.Steepness, sc.Midpoint
		return func(day int) float64 {
			x := float64(day) / days
			return base + amp/(1+math.Exp(-steep*(x-mid)))
		}
	case "linear-decay":
		scale, until := sc.Scale, sc.Until
		return func(day int) float64 {
			x := float64(day) / days
			return scale * math.Max(0, 1-x/until)
		}
	}
	// Validate rejects unknown kinds before compilation can get here.
	panic(fmt.Sprintf("workload: unvalidated schedule kind %q", sc.Kind))
}
