package workload

import (
	"bytes"
	"testing"
)

// FuzzWorkloadSpec hammers the spec parser: arbitrary bytes must never
// panic or allocate proportionally to declared (rather than actual)
// sizes, and any spec that parses must round-trip through Marshal and
// compile without panicking.
func FuzzWorkloadSpec(f *testing.F) {
	for _, name := range PresetNames() {
		data, err := Preset(name).Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":1,"name":"x","days":1,"users":1,` +
		`"flavors":{"defs":[{"name":"f","cpu":1,"mem_gb":1}]},` +
		`"arrival":{"base_rate":1,"weekend_dip":1},` +
		`"batch":{"size_mean":1},"population":{"favorite_count":1},` +
		`"lifetime":{"mu_min_s":60,"mu_max_s":60,"sigma":1}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(data)
		if err != nil {
			return
		}
		out, err := spec.Marshal()
		if err != nil {
			t.Fatalf("valid spec failed to marshal: %v", err)
		}
		back, err := ParseSpec(out)
		if err != nil {
			t.Fatalf("marshalled spec failed to re-parse: %v\n%s", err, out)
		}
		// Compile may reject (unknown flavor references resolve against
		// the catalog here), but must not panic, and a compilable spec
		// must stay compilable after the round trip.
		if _, err := spec.Compile(); err == nil {
			if _, err := back.Compile(); err != nil {
				t.Fatalf("round-tripped spec lost compilability: %v", err)
			}
		}
		_ = spec.Summary()
	})
}

// FuzzTraceReplay hammers the trace-record parser the same way: no
// panics, validate-before-allocate, and accepted records round-trip
// and reconstitute without violating trace invariants.
func FuzzTraceReplay(f *testing.F) {
	seed, err := sampleRecord().Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"version":1,"source":"generate","seed":1,"start_period":0,"periods":1,"scale":0,"count":0,"vms":[]}`))
	f.Add([]byte(`{"version":9,"count":999999999}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := ReadRecord(bytes.NewReader(data))
		if err != nil {
			return
		}
		tr := rec.Trace()
		if len(tr.VMs) != rec.Count {
			t.Fatalf("reconstituted %d VMs from a record declaring %d", len(tr.VMs), rec.Count)
		}
		if err := rec.Verify(tr); err != nil {
			t.Fatalf("record does not verify against its own trace: %v", err)
		}
		out, err := rec.Marshal()
		if err != nil {
			t.Fatalf("valid record failed to marshal: %v", err)
		}
		if _, err := ReadRecord(bytes.NewReader(out)); err != nil {
			t.Fatalf("marshalled record failed to re-parse: %v", err)
		}
	})
}
