package workload

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/synth"
)

var update = flag.Bool("update", false, "rewrite golden spec files")

// TestPresetGoldenFiles pins every preset's serialized form: the JSON
// under testdata/ is the published grammar, and any change to it is a
// deliberate, reviewed diff (regenerate with go test -args -update).
func TestPresetGoldenFiles(t *testing.T) {
	for _, name := range PresetNames() {
		t.Run(name, func(t *testing.T) {
			data, err := Preset(name).Marshal()
			if err != nil {
				t.Fatal(err)
			}
			data = append(data, '\n')
			path := filepath.Join("testdata", name+".golden.json")
			if *update {
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data, want) {
				t.Fatalf("preset %q drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", name, path, data, want)
			}
		})
	}
}

// configsEquivalent compares two synth.Configs for semantic byte
// identity despite the func-typed schedule fields: every non-func
// field must be deeply equal, the schedules must agree pointwise on
// every day of the history, and — the final arbiter — both configs
// must generate identical trace bytes from the same seed.
func configsEquivalent(t *testing.T, got, want synth.Config, seed int64) {
	t.Helper()
	gotFlat, wantFlat := got, want
	gotFlat.Growth, wantFlat.Growth = nil, nil
	gotFlat.LifeShift, wantFlat.LifeShift = nil, nil
	if !reflect.DeepEqual(gotFlat, wantFlat) {
		t.Errorf("config fields differ:\n got %+v\nwant %+v", gotFlat, wantFlat)
	}
	if (got.Growth == nil) != (want.Growth == nil) || (got.LifeShift == nil) != (want.LifeShift == nil) {
		t.Fatalf("schedule presence differs: growth %v/%v lifeshift %v/%v",
			got.Growth != nil, want.Growth != nil, got.LifeShift != nil, want.LifeShift != nil)
	}
	for day := 0; day < want.Days; day++ {
		if got.Growth != nil {
			if g, w := got.Growth(day), want.Growth(day); g != w {
				t.Fatalf("growth(%d) = %v, want %v (must be bit-identical)", day, g, w)
			}
		}
		if got.LifeShift != nil {
			if g, w := got.LifeShift(day), want.LifeShift(day); g != w {
				t.Fatalf("lifeshift(%d) = %v, want %v (must be bit-identical)", day, g, w)
			}
		}
	}
	var gotBuf, wantBuf bytes.Buffer
	if err := got.Generate(seed).WriteJSON(&gotBuf); err != nil {
		t.Fatal(err)
	}
	if err := want.Generate(seed).WriteJSON(&wantBuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBuf.Bytes(), wantBuf.Bytes()) {
		t.Fatal("compiled config generates different trace bytes than the hardcoded one")
	}
}

// TestPresetCompilesToHardcoded: the named presets, round-tripped
// through their golden JSON, compile to configs byte-identical to the
// hardcoded synth constructors.
func TestPresetCompilesToHardcoded(t *testing.T) {
	cases := []struct {
		preset string
		want   func() synth.Config
	}{
		{"azure-like", synth.AzureLike},
		{"huawei-like", synth.HuaweiLike},
	}
	for _, tc := range cases {
		t.Run(tc.preset, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join("testdata", tc.preset+".golden.json"))
			if err != nil {
				t.Fatal(err)
			}
			spec, err := ParseSpec(data)
			if err != nil {
				t.Fatal(err)
			}
			got, err := spec.Compile()
			if err != nil {
				t.Fatal(err)
			}
			configsEquivalent(t, got, tc.want(), 17)
		})
	}
}

// TestMixedPresetCompiles: the heterogeneous preset compiles and its
// golden file stays parseable end to end.
func TestMixedPresetCompiles(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "mixed.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Cohorts) != 3 {
		t.Fatalf("mixed preset compiled to %d cohorts", len(cfg.Cohorts))
	}
	procs := map[string]bool{}
	for _, co := range spec.Cohorts {
		procs[co.Arrival.Process] = true
	}
	if len(procs) != 3 {
		t.Fatalf("mixed preset should use three distinct arrival processes, got %v", procs)
	}
}
