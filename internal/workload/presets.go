package workload

// Named presets. "azure-like" and "huawei-like" compile to the exact
// hardcoded synth.AzureLike()/HuaweiLike() configs (golden-pinned by
// golden_test.go); "mixed" is the three-cohort heterogeneous scenario
// the README documents — interactive Poisson traffic, a bursty Gamma
// batch tier, and a regular Weibull GPU tier over the Azure catalog.

// PresetNames lists the named presets in stable order.
func PresetNames() []string {
	return []string{"azure-like", "huawei-like", "mixed"}
}

// Preset returns a fresh copy of the named preset spec, or nil if the
// name is unknown. Callers own the returned spec and may mutate it.
func Preset(name string) *Spec {
	switch name {
	case "azure-like":
		return azureLikeSpec()
	case "huawei-like":
		return huaweiLikeSpec()
	case "mixed":
		return mixedSpec()
	}
	return nil
}

func azureLikeSpec() *Spec {
	return &Spec{
		Version: SpecVersion,
		Name:    "AzureLike",
		Days:    30,
		Users:   400,
		Flavors: FlavorsSpec{Catalog: "azure16"},
		Arrival: ArrivalBlock{
			BaseRate:         5,
			DiurnalAmplitude: 0.45,
			WeekendDip:       0.6,
			DayEffectSigma:   0.30,
		},
		Batch: BatchSpec{
			SizeMean:        2.6,
			RepeatFlavorP:   0.85,
			RepeatLifetimeP: 0.8,
			TemplateP:       0.35,
		},
		Population: PopulationSpec{
			Zipf:          1.1,
			FavoriteCount: 3,
			Persistence:   0.45,
		},
		Lifetime: LifetimeSpec{
			MuMinSeconds: 8 * 60,
			MuMaxSeconds: 2 * 86400,
			Sigma:        1.0,
			FlavorEffect: 0.7,
		},
	}
}

func huaweiLikeSpec() *Spec {
	return &Spec{
		Version: SpecVersion,
		Name:    "HuaweiLike",
		Days:    60,
		Users:   300,
		Flavors: FlavorsSpec{Catalog: "huawei259"},
		Arrival: ArrivalBlock{
			BaseRate:         1.6,
			DiurnalAmplitude: 0.3,
			WeekendDip:       0.75,
			DayEffectSigma:   0.15,
			Growth: &ScheduleSpec{
				Kind:      "logistic",
				Base:      0.45,
				Amplitude: 0.55,
				Steepness: 10,
				Midpoint:  0.45,
			},
		},
		Batch: BatchSpec{
			SizeMean:        3.2,
			RepeatFlavorP:   0.92,
			RepeatLifetimeP: 0.85,
			TemplateP:       0.25,
		},
		Population: PopulationSpec{
			Zipf:          1.2,
			FavoriteCount: 2,
			Persistence:   0.5,
		},
		Lifetime: LifetimeSpec{
			MuMinSeconds: 20 * 60,
			MuMaxSeconds: 8 * 86400,
			Sigma:        1.0,
			FlavorEffect: 0.5,
			Shift: &ScheduleSpec{
				Kind:  "linear-decay",
				Scale: 1.2,
				Until: 0.75,
			},
		},
	}
}

func mixedSpec() *Spec {
	s := azureLikeSpec()
	s.Name = "MixedCohorts"
	s.Cohorts = []CohortSpec{
		{
			Name:         "interactive",
			RateFraction: 0.5,
			Users:        240,
			SLOClass:     "critical",
			Arrival:      ArrivalProcessSpec{Process: "poisson"},
		},
		{
			Name:         "batch",
			RateFraction: 0.3,
			Users:        120,
			SLOClass:     "batch",
			Arrival:      ArrivalProcessSpec{Process: "gamma", CV: 2},
			Batch: &BatchSpec{
				SizeMean:        4.0,
				RepeatFlavorP:   0.9,
				RepeatLifetimeP: 0.85,
				TemplateP:       0.1,
			},
			Lifetime: &LifetimeOverride{
				MuMinSeconds: 3600,
				MuMaxSeconds: 4 * 86400,
				Sigma:        1.2,
			},
		},
		{
			Name:         "gpu",
			RateFraction: 0.2,
			Users:        40,
			SLOClass:     "best-effort",
			Arrival:      ArrivalProcessSpec{Process: "weibull", CV: 0.5},
			Population: &PopulationSpec{
				Zipf:          1.0,
				FavoriteCount: 2,
				Persistence:   0.3,
			},
			Lifetime: &LifetimeOverride{
				MuMinSeconds: 6 * 3600,
				MuMaxSeconds: 8 * 86400,
				Sigma:        0.8,
			},
			FlavorPrefix: "A8",
		},
	}
	return s
}
