package workload

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"sync"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/trace"
)

// Trace record/replay (DESIGN.md §9): a versioned JSON format capturing
// what a decode produced together with everything needed to reproduce
// it — the seed, window, rate scale, engine kind/precision, and a model
// tag binding the record to the weights that generated it. Replay
// regenerates through any registered engine; the registry's contract
// (all kinds byte-identical per (seed, window, scale)) makes the
// replayed trace byte-identical to the recorded one, and Verify checks
// exactly that, VM by VM.

// RecordVersion is the current trace-record format version.
const RecordVersion = 1

// MaxRecordBytes bounds a trace-record document (a full 30-day
// AzureLike generation serializes well under 10 MB).
const MaxRecordBytes = 64 << 20

// maxRecordVMs caps the declared and actual VM count of a record.
const maxRecordVMs = 10_000_000

// Record is one recorded generation. Count is the declared VM count
// and must match len(VMs) — a cheap integrity check that catches
// truncated files before an expensive replay does.
type Record struct {
	Version   int     `json:"version"`
	Source    string  `json:"source"` // "generate", "experiment", ...
	Engine    string  `json:"engine,omitempty"`
	Precision string  `json:"precision,omitempty"`
	ModelTag  string  `json:"model_tag,omitempty"`
	Seed      int64   `json:"seed"`
	Start     int     `json:"start_period"`
	Periods   int     `json:"periods"`
	Scale     float64 `json:"scale"`
	Count     int     `json:"count"`
	// Flavors is the catalog snapshot so a record is self-describing.
	Flavors []FlavorDefSpec `json:"flavors,omitempty"`
	VMs     []RecordVM      `json:"vms"`
}

// RecordVM mirrors trace.VM with stable JSON names.
type RecordVM struct {
	ID       int     `json:"id"`
	User     int     `json:"user"`
	Flavor   int     `json:"flavor"`
	Start    int     `json:"start"`
	Duration float64 `json:"duration_s"`
	Censored bool    `json:"censored,omitempty"`
}

// NewRecord captures a served trace. The window/seed/scale are the
// request parameters; tr is what the engine returned for them.
func NewRecord(source, engine, precision, modelTag string, seed int64, w trace.Window, scale float64, tr *trace.Trace) *Record {
	rec := &Record{
		Version:   RecordVersion,
		Source:    source,
		Engine:    engine,
		Precision: precision,
		ModelTag:  modelTag,
		Seed:      seed,
		Start:     w.Start,
		Periods:   w.Periods(),
		Scale:     scale,
		Count:     len(tr.VMs),
		VMs:       make([]RecordVM, len(tr.VMs)),
	}
	if tr.Flavors != nil {
		rec.Flavors = make([]FlavorDefSpec, len(tr.Flavors.Defs))
		for i, d := range tr.Flavors.Defs {
			rec.Flavors[i] = FlavorDefSpec{Name: d.Name, CPU: d.CPU, MemGB: d.MemGB}
		}
	}
	for i, vm := range tr.VMs {
		rec.VMs[i] = RecordVM{ID: vm.ID, User: vm.User, Flavor: vm.Flavor, Start: vm.Start, Duration: vm.Duration, Censored: vm.Censored}
	}
	return rec
}

// Validate checks the record header and per-VM invariants. Like the
// spec grammar it is strict: version, caps, count cross-check, and VM
// fields all have to be in range before anything downstream sizes a
// buffer from them.
func (r *Record) Validate() error {
	if r.Version != RecordVersion {
		return fmt.Errorf("workload: unsupported record version %d (want %d)", r.Version, RecordVersion)
	}
	if err := checkName("record source", r.Source); err != nil {
		return err
	}
	if len(r.Engine) > maxNameLen || len(r.Precision) > maxNameLen || len(r.ModelTag) > maxNameLen {
		return fmt.Errorf("workload: record engine/precision/model_tag too long")
	}
	if r.Start < 0 || r.Start > maxDays*trace.PeriodsPerDay {
		return fmt.Errorf("workload: record start_period %d out of range", r.Start)
	}
	if r.Periods < 1 || r.Periods > maxDays*trace.PeriodsPerDay {
		return fmt.Errorf("workload: record periods %d outside [1,%d]", r.Periods, maxDays*trace.PeriodsPerDay)
	}
	if r.Scale < 0 || r.Scale > 1e6 || r.Scale != r.Scale {
		return fmt.Errorf("workload: record scale %v out of range", r.Scale)
	}
	if r.Count < 0 || r.Count > maxRecordVMs {
		return fmt.Errorf("workload: record count %d outside [0,%d]", r.Count, maxRecordVMs)
	}
	if r.Count != len(r.VMs) {
		return fmt.Errorf("workload: record declares %d VMs but carries %d", r.Count, len(r.VMs))
	}
	if len(r.Flavors) > maxFlavors {
		return fmt.Errorf("workload: record has %d flavors (cap %d)", len(r.Flavors), maxFlavors)
	}
	k := len(r.Flavors)
	for i, vm := range r.VMs {
		if vm.Start < 0 || vm.Start >= r.Periods {
			return fmt.Errorf("workload: record vm[%d] start %d outside [0,%d)", i, vm.Start, r.Periods)
		}
		if vm.Flavor < 0 || (k > 0 && vm.Flavor >= k) {
			return fmt.Errorf("workload: record vm[%d] flavor %d out of catalog range", i, vm.Flavor)
		}
		if vm.User < 0 {
			return fmt.Errorf("workload: record vm[%d] negative user", i)
		}
		if vm.Duration < 0 || math.IsNaN(vm.Duration) || math.IsInf(vm.Duration, 0) {
			return fmt.Errorf("workload: record vm[%d] bad duration %v", i, vm.Duration)
		}
	}
	return nil
}

// ReadRecord reads and validates one record document. The reader is
// hard-capped at MaxRecordBytes and parsing is strict (unknown fields
// and trailing data are errors), so a hostile record fails fast.
func ReadRecord(r io.Reader) (*Record, error) {
	data, err := io.ReadAll(io.LimitReader(r, MaxRecordBytes+1))
	if err != nil {
		return nil, fmt.Errorf("workload: read record: %w", err)
	}
	if len(data) > MaxRecordBytes {
		return nil, fmt.Errorf("workload: record exceeds %d bytes", MaxRecordBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	rec := &Record{}
	if err := dec.Decode(rec); err != nil {
		return nil, fmt.Errorf("workload: parse record: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("workload: trailing data after record document")
	}
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	return rec, nil
}

// ReadRecordFile reads a record from path.
func ReadRecordFile(path string) (*Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadRecord(f)
}

// Marshal serializes the record as a single JSON document.
func (r *Record) Marshal() ([]byte, error) {
	return json.Marshal(r)
}

// WriteTo writes the marshalled record followed by a newline (the
// JSONL framing Recorder uses). Implements io.WriterTo.
func (r *Record) WriteTo(w io.Writer) (int64, error) {
	data, err := r.Marshal()
	if err != nil {
		return 0, err
	}
	data = append(data, '\n')
	n, err := w.Write(data)
	return int64(n), err
}

// Trace reconstitutes the recorded trace (for feeding experiments or
// fidelity checks without touching a model).
func (r *Record) Trace() *trace.Trace {
	tr := &trace.Trace{Periods: r.Periods, VMs: make([]trace.VM, len(r.VMs))}
	for i, vm := range r.VMs {
		tr.VMs[i] = trace.VM{ID: vm.ID, User: vm.User, Flavor: vm.Flavor, Start: vm.Start, Duration: vm.Duration, Censored: vm.Censored}
	}
	if len(r.Flavors) > 0 {
		fs := &trace.FlavorSet{Defs: make([]trace.FlavorDef, len(r.Flavors))}
		for i, d := range r.Flavors {
			fs.Defs[i] = trace.FlavorDef{Name: d.Name, CPU: d.CPU, MemGB: d.MemGB}
		}
		tr.Flavors = fs
	}
	return tr
}

// Window returns the recorded generation window.
func (r *Record) Window() trace.Window {
	return trace.Window{Start: r.Start, End: r.Start + r.Periods}
}

// Replay regenerates the record through eng at the recorded seed,
// window, and scale. With the model that produced the record (compare
// ModelTag), the result is byte-identical to r regardless of engine
// kind — the registry contract the replay tests pin.
func Replay(ctx context.Context, eng core.GenEngine, r *Record) (*trace.Trace, error) {
	return eng.Generate(ctx, rng.New(r.Seed), r.Window(), r.Scale)
}

// Verify checks that tr reproduces the record exactly: same VM count
// and every field of every VM equal. It returns a positioned error on
// first divergence so test failures point at the offending VM.
func (r *Record) Verify(tr *trace.Trace) error {
	if tr.Periods != r.Periods {
		return fmt.Errorf("workload: replay periods %d != recorded %d", tr.Periods, r.Periods)
	}
	if len(tr.VMs) != len(r.VMs) {
		return fmt.Errorf("workload: replay produced %d VMs, recorded %d", len(tr.VMs), len(r.VMs))
	}
	for i, vm := range tr.VMs {
		want := trace.VM{ID: r.VMs[i].ID, User: r.VMs[i].User, Flavor: r.VMs[i].Flavor, Start: r.VMs[i].Start, Duration: r.VMs[i].Duration, Censored: r.VMs[i].Censored}
		if vm != want {
			return fmt.Errorf("workload: replay diverges at vm[%d]: got %+v want %+v", i, vm, want)
		}
	}
	return nil
}

// ModelTag derives a short stable tag from the model's flavor-stage
// weights and dimensions. Two models trained identically share a tag;
// any weight difference changes it, so a replay against the wrong
// model is detectable before the byte-compare fails.
func ModelTag(m *core.Model) string {
	if m == nil || m.Flavor == nil {
		return ""
	}
	h := fnv.New64a()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeU64(uint64(m.Flavor.K))
	writeU64(uint64(m.Flavor.HistoryDays))
	if m.Flavor.Net != nil {
		for _, p := range m.Flavor.Net.Params() {
			for _, v := range p.Value.Data {
				writeU64(math.Float64bits(v))
			}
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Recorder appends records to a JSONL file, safe for concurrent
// request handlers. The zero value is a no-op sink, so callers can
// wire it unconditionally.
type Recorder struct {
	mu sync.Mutex
	w  io.WriteCloser
	n  int
}

// OpenRecorder creates (or truncates) a JSONL record sink at path.
func OpenRecorder(path string) (*Recorder, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &Recorder{w: f}, nil
}

// Append writes one record. Safe for concurrent use.
func (rc *Recorder) Append(r *Record) error {
	if rc == nil {
		return nil
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.w == nil {
		return nil
	}
	if _, err := r.WriteTo(rc.w); err != nil {
		return err
	}
	rc.n++
	return nil
}

// Count returns the number of records appended so far.
func (rc *Recorder) Count() int {
	if rc == nil {
		return 0
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.n
}

// Close flushes and closes the sink. Further Appends are no-ops.
func (rc *Recorder) Close() error {
	if rc == nil {
		return nil
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.w == nil {
		return nil
	}
	err := rc.w.Close()
	rc.w = nil
	return err
}

// ReadRecords reads every record from a JSONL stream (the Recorder
// format), validating each. Total input is capped at MaxRecordBytes.
func ReadRecords(r io.Reader) ([]*Record, error) {
	data, err := io.ReadAll(io.LimitReader(r, MaxRecordBytes+1))
	if err != nil {
		return nil, fmt.Errorf("workload: read records: %w", err)
	}
	if len(data) > MaxRecordBytes {
		return nil, fmt.Errorf("workload: record stream exceeds %d bytes", MaxRecordBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var out []*Record
	for dec.More() {
		rec := &Record{}
		if err := dec.Decode(rec); err != nil {
			return nil, fmt.Errorf("workload: parse record %d: %w", len(out), err)
		}
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("workload: record %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
	return out, nil
}
