package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func sampleRecord() *Record {
	fs := &trace.FlavorSet{Defs: []trace.FlavorDef{
		{Name: "small", CPU: 1, MemGB: 2},
		{Name: "big", CPU: 8, MemGB: 32},
	}}
	tr := &trace.Trace{
		Flavors: fs,
		Periods: 12,
		VMs: []trace.VM{
			{ID: 0, User: 3, Flavor: 0, Start: 0, Duration: 600},
			{ID: 1, User: 3, Flavor: 1, Start: 2, Duration: 90.5},
			{ID: 2, User: 7, Flavor: 0, Start: 11, Duration: 60, Censored: true},
		},
	}
	return NewRecord("generate", "batched", "f64", "deadbeef00000000", 42, trace.Window{Start: 576, End: 588}, 1.5, tr)
}

func TestRecordRoundTrip(t *testing.T) {
	rec := sampleRecord()
	data, err := rec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadRecord(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if back.Seed != 42 || back.Start != 576 || back.Periods != 12 || back.Scale != 1.5 {
		t.Fatalf("header mangled: %+v", back)
	}
	if w := back.Window(); w.Start != 576 || w.End != 588 {
		t.Fatalf("window: %+v", w)
	}
	tr := back.Trace()
	if err := rec.Verify(tr); err != nil {
		t.Fatalf("reconstituted trace fails Verify: %v", err)
	}
	if tr.Flavors == nil || tr.Flavors.K() != 2 || tr.Flavors.Defs[1].Name != "big" {
		t.Fatalf("flavors mangled: %+v", tr.Flavors)
	}
}

func TestRecordVerifyDivergence(t *testing.T) {
	rec := sampleRecord()
	tr := rec.Trace()
	tr.VMs[1].Duration += 1
	err := rec.Verify(tr)
	if err == nil || !strings.Contains(err.Error(), "vm[1]") {
		t.Fatalf("err = %v, want divergence at vm[1]", err)
	}
	short := rec.Trace()
	short.VMs = short.VMs[:2]
	if err := rec.Verify(short); err == nil {
		t.Fatal("short trace should fail Verify")
	}
}

func TestReadRecordHostile(t *testing.T) {
	valid, err := sampleRecord().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(old, new string) string {
		s := strings.Replace(string(valid), old, new, 1)
		if s == string(valid) {
			t.Fatalf("mutation %q not applied", old)
		}
		return s
	}
	cases := []struct {
		name string
		data string
		want string
	}{
		{"empty", ``, "parse record"},
		{"unknown field", `{"version":1,"surprise":true}`, "parse record"},
		{"trailing", string(valid) + `{}`, "trailing data"},
		{"bad version", mutate(`"version":1`, `"version":9`), "unsupported record version"},
		{"count mismatch", mutate(`"count":3`, `"count":4`), "declares 4"},
		{"count huge", mutate(`"count":3`, `"count":99999999999`), "count"},
		{"negative seed ok but bad periods", mutate(`"periods":12`, `"periods":0`), "periods"},
		{"vm out of window", mutate(`"start":11`, `"start":12`), "outside"},
		{"flavor out of range", mutate(`"flavor":1,"start":2`, `"flavor":7,"start":2`), "flavor"},
		{"nan duration", mutate(`"duration_s":90.5`, `"duration_s":"NaN"`), "parse record"},
		{"negative duration", mutate(`"duration_s":90.5`, `"duration_s":-4`), "duration"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadRecord(strings.NewReader(tc.data))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestReadRecordSizeCap(t *testing.T) {
	huge := `{"version":1,"source":"x","pad":"` + strings.Repeat("y", MaxRecordBytes) + `"}`
	_, err := ReadRecord(strings.NewReader(huge))
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("err = %v, want size-cap error", err)
	}
}

func TestRecorderJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "records.jsonl")
	rc, err := OpenRecorder(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := sampleRecord()
	for i := 0; i < 3; i++ {
		if err := rc.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if rc.Count() != 3 {
		t.Fatalf("count = %d", rc.Count())
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rc.Append(rec); err != nil {
		t.Fatalf("append after close should be a no-op, got %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ReadRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("read %d records, want 3", len(recs))
	}
	for _, r := range recs {
		if err := rec.Verify(r.Trace()); err != nil {
			t.Fatal(err)
		}
	}
	// The zero/nil Recorder is a no-op sink.
	var nilRC *Recorder
	if err := nilRC.Append(rec); err != nil || nilRC.Count() != 0 || nilRC.Close() != nil {
		t.Fatal("nil Recorder should be inert")
	}
}
