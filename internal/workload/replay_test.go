package workload

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/survival"
	"repro/internal/synth"
	"repro/internal/trace"
)

var (
	modelOnce sync.Once
	testModel *core.Model
)

// replayModel trains a tiny model once (the server-test pattern) and
// shares it across the replay tests.
func replayModel(t testing.TB) *core.Model {
	t.Helper()
	modelOnce.Do(func() {
		cfg := synth.AzureLike()
		cfg.Days = 2
		cfg.Users = 40
		cfg.BaseRate = 1.5
		full := cfg.Generate(3)
		train := full.Slice(trace.Window{Start: 0, End: full.Periods}, 0)
		m, err := core.TrainModel(train, core.ModelOptions{
			Bins: survival.PaperBins(),
			Train: core.TrainConfig{
				Hidden: 12, Layers: 1, SeqLen: 48, BatchSize: 8, Epochs: 5, Seed: 1,
			},
		})
		if err != nil {
			panic(err)
		}
		testModel = m
	})
	return testModel
}

func newEngine(t *testing.T, m *core.Model, kind core.EngineKind) core.GenEngine {
	t.Helper()
	eng, err := core.NewGenEngine(m, core.EngineSpec{
		Kind:     kind,
		Window:   time.Millisecond,
		MaxBatch: 4,
		Shards:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestReplayByteIdentityAcrossEngines is the acceptance criterion: a
// trace recorded from one engine replays byte-identically through the
// same seed on every registered engine kind.
func TestReplayByteIdentityAcrossEngines(t *testing.T) {
	m := replayModel(t)
	tag := ModelTag(m)
	if tag == "" {
		t.Fatal("empty model tag")
	}
	start := m.Flavor.HistoryDays * trace.PeriodsPerDay
	w := trace.Window{Start: start, End: start + 36}
	const seed, scale = 99, 1.0

	src := newEngine(t, m, core.EngineSerial)
	tr, err := src.Generate(context.Background(), rng.New(seed), w, scale)
	if err != nil {
		t.Fatal(err)
	}
	src.Close()
	if len(tr.VMs) == 0 {
		t.Fatal("recorded trace is empty; widen the window")
	}
	rec := NewRecord("test", string(core.EngineSerial), "f64", tag, seed, w, scale, tr)

	// The record survives serialization before replay — the on-disk
	// round trip is part of the pinned path.
	data, err := rec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	rec2, err := ReadRecord(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}

	for _, kind := range core.EngineKinds() {
		t.Run(string(kind), func(t *testing.T) {
			eng := newEngine(t, m, kind)
			defer eng.Close()
			got, err := Replay(context.Background(), eng, rec2)
			if err != nil {
				t.Fatal(err)
			}
			if err := rec2.Verify(got); err != nil {
				t.Fatalf("replay on %s diverges: %v", kind, err)
			}
		})
	}
}

// TestReplayWrongSeedDiverges: Verify actually detects divergence — a
// replay at a different seed must not silently pass.
func TestReplayWrongSeedDiverges(t *testing.T) {
	m := replayModel(t)
	start := m.Flavor.HistoryDays * trace.PeriodsPerDay
	w := trace.Window{Start: start, End: start + 36}
	eng := newEngine(t, m, core.EngineSerial)
	defer eng.Close()
	tr, err := eng.Generate(context.Background(), rng.New(5), w, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecord("test", "serial", "f64", ModelTag(m), 5, w, 0, tr)
	rec.Seed = 6
	got, err := Replay(context.Background(), eng, rec)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Verify(got) == nil {
		t.Fatal("replay at the wrong seed should diverge")
	}
}

// TestModelTagStability: the tag is a pure function of the weights —
// stable across calls, different for a different model.
func TestModelTagStability(t *testing.T) {
	m := replayModel(t)
	if ModelTag(m) != ModelTag(m) {
		t.Fatal("tag not stable")
	}
	if ModelTag(nil) != "" {
		t.Fatal("nil model should tag empty")
	}
}
