// Package workload is the declarative multi-client workload-spec layer
// (ROADMAP item 1): a stdlib-only JSON grammar describing heterogeneous
// client cohorts — per-cohort rate fractions, arrival processes
// (Poisson, bursty Gamma, Weibull, all with CV knobs), flavor and
// lifetime distribution overrides, SLO classes, and diurnal/trend
// schedules — that compiles to a synth.Config, plus named presets that
// reproduce the hardcoded AzureLike/HuaweiLike scenarios exactly, and a
// versioned trace record/replay format (record.go) so traffic emitted
// by /generate or the experiments can be replayed deterministically.
//
// Parsing is strict (unknown fields are errors) and validates before
// allocating anything proportional to declared sizes: a hostile spec or
// trace record fails fast on its header, never by exhausting memory
// (DESIGN.md §9).
package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// SpecVersion is the current workload-spec grammar version. Version 1
// is the grammar this file defines; parsers reject anything else so a
// future v2 can change semantics without silently misreading v1 files.
const SpecVersion = 1

// Grammar caps: every count or magnitude a spec can declare is bounded
// before it is used to size anything. The caps are generous for real
// scenarios and tiny next to memory.
const (
	// MaxSpecBytes bounds a spec document.
	MaxSpecBytes = 1 << 20
	maxNameLen   = 128
	maxDays      = 3650 // ten years of history
	maxUsers     = 1_000_000
	maxFlavors   = 4096
	maxCohorts   = 64
	maxBaseRate  = 1e6
	maxCV        = 20
	minCV        = 0.05
)

// Spec is the top-level workload description. Base blocks (Arrival,
// Batch, Population, Lifetime) define the scenario-wide process; the
// optional Cohorts list splits the aggregate rate across heterogeneous
// client populations, each able to override the base blocks.
type Spec struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	// Days is the history length the scenario generates/trains on.
	Days int `json:"days"`
	// Users is the population size (base path), or the default pool the
	// compiler splits by rate fraction for cohorts that omit "users".
	Users      int            `json:"users"`
	Flavors    FlavorsSpec    `json:"flavors"`
	Arrival    ArrivalBlock   `json:"arrival"`
	Batch      BatchSpec      `json:"batch"`
	Population PopulationSpec `json:"population"`
	Lifetime   LifetimeSpec   `json:"lifetime"`
	Cohorts    []CohortSpec   `json:"cohorts,omitempty"`
}

// FlavorsSpec names the flavor catalog: either a built-in one
// ("azure16", "huawei259") or an explicit definition list.
type FlavorsSpec struct {
	Catalog string          `json:"catalog,omitempty"`
	Defs    []FlavorDefSpec `json:"defs,omitempty"`
}

// FlavorDefSpec is one custom flavor definition.
type FlavorDefSpec struct {
	Name  string  `json:"name"`
	CPU   float64 `json:"cpu"`
	MemGB float64 `json:"mem_gb"`
}

// ArrivalBlock is the scenario-wide arrival schedule: the aggregate
// base rate and the diurnal/weekly/day-effect/trend shape every cohort
// shares (cohorts modulate it by rate fraction and arrival process).
type ArrivalBlock struct {
	// BaseRate is the mean batch arrivals per 5-minute period at
	// reference conditions, summed across cohorts.
	BaseRate         float64       `json:"base_rate"`
	DiurnalAmplitude float64       `json:"diurnal_amplitude"`
	WeekendDip       float64       `json:"weekend_dip"`
	DayEffectSigma   float64       `json:"day_effect_sigma"`
	Growth           *ScheduleSpec `json:"growth,omitempty"`
}

// ScheduleSpec is a declarative day-indexed schedule: the workload
// grammar's stand-in for the closed-over Growth/LifeShift functions of
// the hardcoded presets. Day index is normalized to x = day/days.
type ScheduleSpec struct {
	// Kind selects the curve: "logistic" (growth that levels off,
	// base + amplitude/(1+exp(-steepness*(x-midpoint)))) or
	// "linear-decay" (scale * max(0, 1-x/until), the Huawei lifetime
	// regime change).
	Kind      string  `json:"kind"`
	Base      float64 `json:"base,omitempty"`
	Amplitude float64 `json:"amplitude,omitempty"`
	Steepness float64 `json:"steepness,omitempty"`
	Midpoint  float64 `json:"midpoint,omitempty"`
	Scale     float64 `json:"scale,omitempty"`
	Until     float64 `json:"until,omitempty"`
}

// BatchSpec is the within-batch structure block.
type BatchSpec struct {
	SizeMean        float64 `json:"size_mean"`
	RepeatFlavorP   float64 `json:"repeat_flavor_p"`
	RepeatLifetimeP float64 `json:"repeat_lifetime_p"`
	TemplateP       float64 `json:"template_p"`
}

// PopulationSpec is the user-population block.
type PopulationSpec struct {
	Zipf          float64 `json:"zipf"`
	FavoriteCount int     `json:"favorite_count"`
	Persistence   float64 `json:"persistence"`
}

// LifetimeSpec is the lifetime-distribution block. Bounds are plain
// seconds in the JSON; the compiler moves them to log space.
type LifetimeSpec struct {
	MuMinSeconds float64       `json:"mu_min_s"`
	MuMaxSeconds float64       `json:"mu_max_s"`
	Sigma        float64       `json:"sigma"`
	FlavorEffect float64       `json:"flavor_effect"`
	Shift        *ScheduleSpec `json:"shift,omitempty"`
}

// LifetimeOverride is a cohort's lifetime block: same fields as the
// base minus the scenario-global flavor effect and shift schedule.
type LifetimeOverride struct {
	MuMinSeconds float64 `json:"mu_min_s"`
	MuMaxSeconds float64 `json:"mu_max_s"`
	Sigma        float64 `json:"sigma"`
}

// ArrivalProcessSpec names a cohort's arrival process. CV is the
// burstiness knob: for "gamma" it is the coefficient of variation of
// the doubly-stochastic rate multiplier; for "weibull" the CV of the
// interarrival times (shape is solved from it). "poisson" takes no CV.
type ArrivalProcessSpec struct {
	Process string  `json:"process"`
	CV      float64 `json:"cv,omitempty"`
}

// CohortSpec is one client cohort. Nil override blocks inherit the
// spec-level base blocks wholesale; a non-nil block replaces its base
// block entirely (no per-field merging, so a spec reads unambiguously).
type CohortSpec struct {
	Name         string  `json:"name"`
	RateFraction float64 `json:"rate_fraction"`
	// Users sizes the cohort population; 0 lets the compiler split the
	// spec-level Users pool proportionally to RateFraction.
	Users      int                `json:"users,omitempty"`
	SLOClass   string             `json:"slo_class,omitempty"`
	Arrival    ArrivalProcessSpec `json:"arrival_process"`
	Batch      *BatchSpec         `json:"batch,omitempty"`
	Population *PopulationSpec    `json:"population,omitempty"`
	Lifetime   *LifetimeOverride  `json:"lifetime,omitempty"`
	// FlavorNames restricts the cohort's favorite flavors to the named
	// catalog entries; FlavorPrefix to every entry whose name has the
	// prefix. At most one may be set.
	FlavorNames  []string `json:"flavor_names,omitempty"`
	FlavorPrefix string   `json:"flavor_prefix,omitempty"`
}

// ParseSpec parses and validates a workload spec document. Parsing is
// strict: unknown fields, trailing garbage, oversized documents, and
// out-of-cap values are all errors. The returned spec is valid.
func ParseSpec(data []byte) (*Spec, error) {
	if len(data) > MaxSpecBytes {
		return nil, fmt.Errorf("workload: spec is %d bytes (cap %d)", len(data), MaxSpecBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	s := &Spec{}
	if err := dec.Decode(s); err != nil {
		return nil, fmt.Errorf("workload: parse spec: %w", err)
	}
	// A second document (or trailing junk) after the spec is almost
	// certainly a mistake; reject it rather than silently ignoring it.
	if dec.More() {
		return nil, fmt.Errorf("workload: trailing data after spec document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Marshal serializes the spec as indented JSON (the golden-file and
// example format).
func (s *Spec) Marshal() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

func checkProb(field string, v float64) error {
	if v < 0 || v > 1 || v != v {
		return fmt.Errorf("workload: %s must be in [0,1], got %v", field, v)
	}
	return nil
}

func checkName(field, v string) error {
	if v == "" {
		return fmt.Errorf("workload: %s must be non-empty", field)
	}
	if len(v) > maxNameLen {
		return fmt.Errorf("workload: %s is %d chars (cap %d)", field, len(v), maxNameLen)
	}
	return nil
}

// Validate checks the whole grammar: versions, caps, probability
// ranges, schedule kinds, cohort fraction sums, and flavor references.
func (s *Spec) Validate() error {
	if s.Version != SpecVersion {
		return fmt.Errorf("workload: unsupported spec version %d (want %d)", s.Version, SpecVersion)
	}
	if err := checkName("name", s.Name); err != nil {
		return err
	}
	if s.Days < 1 || s.Days > maxDays {
		return fmt.Errorf("workload: days %d outside [1,%d]", s.Days, maxDays)
	}
	if s.Users < 1 || s.Users > maxUsers {
		return fmt.Errorf("workload: users %d outside [1,%d]", s.Users, maxUsers)
	}
	if err := s.Flavors.validate(); err != nil {
		return err
	}
	if err := s.Arrival.validate(); err != nil {
		return err
	}
	if err := s.Batch.validate("batch"); err != nil {
		return err
	}
	if err := s.Population.validate("population"); err != nil {
		return err
	}
	if err := s.Lifetime.validate(); err != nil {
		return err
	}
	if len(s.Cohorts) > maxCohorts {
		return fmt.Errorf("workload: %d cohorts (cap %d)", len(s.Cohorts), maxCohorts)
	}
	names := map[string]bool{}
	var frac float64
	for i := range s.Cohorts {
		co := &s.Cohorts[i]
		if err := co.validate(fmt.Sprintf("cohorts[%d]", i), s); err != nil {
			return err
		}
		if names[co.Name] {
			return fmt.Errorf("workload: duplicate cohort name %q", co.Name)
		}
		names[co.Name] = true
		frac += co.RateFraction
	}
	if len(s.Cohorts) > 0 && math.Abs(frac-1) > 1e-6 {
		return fmt.Errorf("workload: cohort rate fractions sum to %v, want 1", frac)
	}
	return nil
}

func (f *FlavorsSpec) validate() error {
	switch {
	case f.Catalog != "" && len(f.Defs) > 0:
		return fmt.Errorf("workload: flavors sets both catalog and defs")
	case f.Catalog != "":
		if f.Catalog != "azure16" && f.Catalog != "huawei259" {
			return fmt.Errorf("workload: unknown flavor catalog %q (have azure16, huawei259)", f.Catalog)
		}
	case len(f.Defs) == 0:
		return fmt.Errorf("workload: flavors needs a catalog name or defs")
	default:
		if len(f.Defs) > maxFlavors {
			return fmt.Errorf("workload: %d flavor defs (cap %d)", len(f.Defs), maxFlavors)
		}
		seen := map[string]bool{}
		for i, d := range f.Defs {
			if err := checkName(fmt.Sprintf("flavors.defs[%d].name", i), d.Name); err != nil {
				return err
			}
			if seen[d.Name] {
				return fmt.Errorf("workload: duplicate flavor name %q", d.Name)
			}
			seen[d.Name] = true
			if !(d.CPU > 0 && d.CPU <= 1024) {
				return fmt.Errorf("workload: flavor %q cpu %v outside (0,1024]", d.Name, d.CPU)
			}
			if !(d.MemGB > 0 && d.MemGB <= 65536) {
				return fmt.Errorf("workload: flavor %q mem_gb %v outside (0,65536]", d.Name, d.MemGB)
			}
		}
	}
	return nil
}

func (a *ArrivalBlock) validate() error {
	if !(a.BaseRate > 0 && a.BaseRate <= maxBaseRate) {
		return fmt.Errorf("workload: arrival.base_rate %v outside (0,%g]", a.BaseRate, float64(maxBaseRate))
	}
	if a.DiurnalAmplitude < 0 || a.DiurnalAmplitude >= 1 {
		return fmt.Errorf("workload: arrival.diurnal_amplitude %v outside [0,1)", a.DiurnalAmplitude)
	}
	if !(a.WeekendDip > 0 && a.WeekendDip <= 1) {
		return fmt.Errorf("workload: arrival.weekend_dip %v outside (0,1]", a.WeekendDip)
	}
	if a.DayEffectSigma < 0 || a.DayEffectSigma > 5 {
		return fmt.Errorf("workload: arrival.day_effect_sigma %v outside [0,5]", a.DayEffectSigma)
	}
	if a.Growth != nil {
		if err := a.Growth.validate("arrival.growth", "logistic"); err != nil {
			return err
		}
	}
	return nil
}

// validate checks a schedule block; allowed lists the kinds legal in
// this position.
func (sc *ScheduleSpec) validate(field string, allowed ...string) error {
	ok := false
	for _, k := range allowed {
		if sc.Kind == k {
			ok = true
		}
	}
	if !ok {
		return fmt.Errorf("workload: %s.kind %q not in %v", field, sc.Kind, allowed)
	}
	switch sc.Kind {
	case "logistic":
		if !(sc.Base >= 0 && sc.Base <= 100) || !(sc.Amplitude >= 0 && sc.Amplitude <= 100) {
			return fmt.Errorf("workload: %s base/amplitude outside [0,100]", field)
		}
		if sc.Base+sc.Amplitude <= 0 {
			return fmt.Errorf("workload: %s is identically zero", field)
		}
		if !(sc.Steepness > 0 && sc.Steepness <= 1000) {
			return fmt.Errorf("workload: %s.steepness %v outside (0,1000]", field, sc.Steepness)
		}
		if sc.Midpoint < 0 || sc.Midpoint > 1 {
			return fmt.Errorf("workload: %s.midpoint %v outside [0,1]", field, sc.Midpoint)
		}
	case "linear-decay":
		if !(sc.Scale >= -20 && sc.Scale <= 20) || sc.Scale != sc.Scale {
			return fmt.Errorf("workload: %s.scale %v outside [-20,20]", field, sc.Scale)
		}
		if !(sc.Until > 0 && sc.Until <= 1) {
			return fmt.Errorf("workload: %s.until %v outside (0,1]", field, sc.Until)
		}
	}
	return nil
}

func (b *BatchSpec) validate(field string) error {
	if !(b.SizeMean >= 1 && b.SizeMean <= 1000) {
		return fmt.Errorf("workload: %s.size_mean %v outside [1,1000]", field, b.SizeMean)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{field + ".repeat_flavor_p", b.RepeatFlavorP},
		{field + ".repeat_lifetime_p", b.RepeatLifetimeP},
		{field + ".template_p", b.TemplateP},
	} {
		if err := checkProb(p.name, p.v); err != nil {
			return err
		}
	}
	return nil
}

func (p *PopulationSpec) validate(field string) error {
	if !(p.Zipf >= 0 && p.Zipf <= 10) {
		return fmt.Errorf("workload: %s.zipf %v outside [0,10]", field, p.Zipf)
	}
	if p.FavoriteCount < 1 || p.FavoriteCount > 64 {
		return fmt.Errorf("workload: %s.favorite_count %d outside [1,64]", field, p.FavoriteCount)
	}
	return checkProb(field+".persistence", p.Persistence)
}

func (l *LifetimeSpec) validate() error {
	if err := checkLifetimeBounds("lifetime", l.MuMinSeconds, l.MuMaxSeconds, l.Sigma); err != nil {
		return err
	}
	if l.FlavorEffect < 0 || l.FlavorEffect > 10 {
		return fmt.Errorf("workload: lifetime.flavor_effect %v outside [0,10]", l.FlavorEffect)
	}
	if l.Shift != nil {
		if err := l.Shift.validate("lifetime.shift", "linear-decay"); err != nil {
			return err
		}
	}
	return nil
}

func checkLifetimeBounds(field string, muMin, muMax, sigma float64) error {
	if !(muMin >= 1 && muMin <= 1e10) {
		return fmt.Errorf("workload: %s.mu_min_s %v outside [1,1e10]", field, muMin)
	}
	if !(muMax >= muMin && muMax <= 1e10) {
		return fmt.Errorf("workload: %s.mu_max_s %v outside [mu_min_s,1e10]", field, muMax)
	}
	if !(sigma > 0 && sigma <= 10) {
		return fmt.Errorf("workload: %s.sigma %v outside (0,10]", field, sigma)
	}
	return nil
}

func (a *ArrivalProcessSpec) validate(field string) error {
	switch a.Process {
	case "poisson":
		if a.CV != 0 {
			return fmt.Errorf("workload: %s: poisson takes no cv", field)
		}
	case "gamma", "weibull":
		if !(a.CV >= minCV && a.CV <= maxCV) {
			return fmt.Errorf("workload: %s.cv %v outside [%g,%g]", field, a.CV, float64(minCV), float64(maxCV))
		}
	default:
		return fmt.Errorf("workload: %s.process %q not in [poisson gamma weibull]", field, a.Process)
	}
	return nil
}

func (co *CohortSpec) validate(field string, s *Spec) error {
	if err := checkName(field+".name", co.Name); err != nil {
		return err
	}
	if !(co.RateFraction > 0 && co.RateFraction <= 1) {
		return fmt.Errorf("workload: %s.rate_fraction %v outside (0,1]", field, co.RateFraction)
	}
	if co.Users < 0 || co.Users > maxUsers {
		return fmt.Errorf("workload: %s.users %d outside [0,%d]", field, co.Users, maxUsers)
	}
	if len(co.SLOClass) > maxNameLen {
		return fmt.Errorf("workload: %s.slo_class too long", field)
	}
	if err := co.Arrival.validate(field + ".arrival_process"); err != nil {
		return err
	}
	if co.Batch != nil {
		if err := co.Batch.validate(field + ".batch"); err != nil {
			return err
		}
	}
	if co.Population != nil {
		if err := co.Population.validate(field + ".population"); err != nil {
			return err
		}
	}
	if co.Lifetime != nil {
		if err := checkLifetimeBounds(field+".lifetime", co.Lifetime.MuMinSeconds, co.Lifetime.MuMaxSeconds, co.Lifetime.Sigma); err != nil {
			return err
		}
	}
	if len(co.FlavorNames) > 0 && co.FlavorPrefix != "" {
		return fmt.Errorf("workload: %s sets both flavor_names and flavor_prefix", field)
	}
	if len(co.FlavorNames) > maxFlavors {
		return fmt.Errorf("workload: %s.flavor_names has %d entries (cap %d)", field, len(co.FlavorNames), maxFlavors)
	}
	// Flavor references are resolved (and therefore existence-checked)
	// at compile time against the actual catalog; here we only check
	// the strings themselves.
	for i, n := range co.FlavorNames {
		if err := checkName(fmt.Sprintf("%s.flavor_names[%d]", field, i), n); err != nil {
			return err
		}
	}
	if len(co.FlavorPrefix) > maxNameLen {
		return fmt.Errorf("workload: %s.flavor_prefix too long", field)
	}
	return nil
}

// Summary returns the compact spec description cmd/traced echoes on
// GET /metrics: enough to identify the scenario without re-serving the
// whole document.
func (s *Spec) Summary() map[string]any {
	out := map[string]any{
		"version": s.Version,
		"name":    s.Name,
		"days":    s.Days,
		"users":   s.Users,
	}
	if s.Flavors.Catalog != "" {
		out["catalog"] = s.Flavors.Catalog
	} else {
		out["catalog"] = fmt.Sprintf("custom(%d)", len(s.Flavors.Defs))
	}
	out["base_rate"] = s.Arrival.BaseRate
	if len(s.Cohorts) > 0 {
		cohorts := make([]map[string]any, len(s.Cohorts))
		for i, co := range s.Cohorts {
			c := map[string]any{
				"name":          co.Name,
				"rate_fraction": co.RateFraction,
				"process":       co.Arrival.Process,
			}
			if co.Arrival.CV != 0 {
				c["cv"] = co.Arrival.CV
			}
			if co.SLOClass != "" {
				c["slo_class"] = co.SLOClass
			}
			cohorts[i] = c
		}
		out["cohorts"] = cohorts
	}
	return out
}

// cohortFlavorSubset resolves a cohort's flavor restriction against a
// catalog's names, returning nil when unrestricted.
func cohortFlavorSubset(co *CohortSpec, names []string) ([]int, error) {
	if len(co.FlavorNames) == 0 && co.FlavorPrefix == "" {
		return nil, nil
	}
	index := make(map[string]int, len(names))
	for i, n := range names {
		index[n] = i
	}
	var subset []int
	if co.FlavorPrefix != "" {
		for i, n := range names {
			if strings.HasPrefix(n, co.FlavorPrefix) {
				subset = append(subset, i)
			}
		}
		if len(subset) == 0 {
			return nil, fmt.Errorf("workload: cohort %q flavor_prefix %q matches no flavors", co.Name, co.FlavorPrefix)
		}
		return subset, nil
	}
	for _, n := range co.FlavorNames {
		i, ok := index[n]
		if !ok {
			return nil, fmt.Errorf("workload: cohort %q references unknown flavor %q", co.Name, n)
		}
		subset = append(subset, i)
	}
	return subset, nil
}
