package workload

import (
	"strings"
	"testing"
)

// mutate round-trips a preset through JSON with a field edited, to
// exercise Validate through ParseSpec the way real input arrives.
func parseMutated(t *testing.T, base *Spec, edit func(*Spec)) error {
	t.Helper()
	c := *base
	if base.Cohorts != nil {
		c.Cohorts = append([]CohortSpec{}, base.Cohorts...)
	}
	edit(&c)
	data, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	_, err = ParseSpec(data)
	return err
}

func TestParseSpecRoundTrip(t *testing.T) {
	for _, name := range PresetNames() {
		t.Run(name, func(t *testing.T) {
			spec := Preset(name)
			data, err := spec.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			back, err := ParseSpec(data)
			if err != nil {
				t.Fatalf("preset %q does not round-trip: %v", name, err)
			}
			again, err := back.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != string(again) {
				t.Fatalf("marshal not stable:\n%s\nvs\n%s", data, again)
			}
		})
	}
}

func TestPresetUnknown(t *testing.T) {
	if Preset("no-such-preset") != nil {
		t.Fatal("unknown preset should be nil")
	}
}

func TestParseSpecStrictness(t *testing.T) {
	base := Preset("mixed")
	valid, err := base.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data string
		want string // substring of the error
	}{
		{"empty", ``, "parse spec"},
		{"not json", `{`, "parse spec"},
		{"unknown field", `{"version":1,"nmae":"x"}`, "parse spec"},
		{"trailing data", string(valid) + `{"version":1}`, "trailing data"},
		{"wrong version", strings.Replace(string(valid), `"version": 1`, `"version": 2`, 1), "unsupported spec version"},
		{"oversized", `{"version":1,"pad":"` + strings.Repeat("x", MaxSpecBytes) + `"}`, "cap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.data))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestValidateRejects(t *testing.T) {
	base := Preset("mixed")
	cases := []struct {
		name string
		edit func(*Spec)
		want string
	}{
		{"no name", func(s *Spec) { s.Name = "" }, "non-empty"},
		{"days cap", func(s *Spec) { s.Days = maxDays + 1 }, "days"},
		{"zero users", func(s *Spec) { s.Users = 0 }, "users"},
		{"bad catalog", func(s *Spec) { s.Flavors.Catalog = "gcp" }, "catalog"},
		{"zero rate", func(s *Spec) { s.Arrival.BaseRate = 0 }, "base_rate"},
		{"diurnal >= 1", func(s *Spec) { s.Arrival.DiurnalAmplitude = 1 }, "diurnal"},
		{"batch mean < 1", func(s *Spec) { s.Batch.SizeMean = 0.5 }, "size_mean"},
		{"prob > 1", func(s *Spec) { s.Batch.TemplateP = 1.5 }, "[0,1]"},
		{"favorite zero", func(s *Spec) { s.Population.FavoriteCount = 0 }, "favorite_count"},
		{"mu order", func(s *Spec) { s.Lifetime.MuMaxSeconds = s.Lifetime.MuMinSeconds - 1 }, "mu_max_s"},
		{"sigma zero", func(s *Spec) { s.Lifetime.Sigma = 0 }, "sigma"},
		{"fractions", func(s *Spec) { s.Cohorts[0].RateFraction = 0.4 }, "sum"},
		{"dup cohort", func(s *Spec) { s.Cohorts[1].Name = s.Cohorts[0].Name }, "duplicate"},
		{"poisson cv", func(s *Spec) { s.Cohorts[0].Arrival.CV = 1 }, "poisson takes no cv"},
		{"cv cap", func(s *Spec) { s.Cohorts[1].Arrival.CV = maxCV + 1 }, "cv"},
		{"bad process", func(s *Spec) { s.Cohorts[0].Arrival.Process = "hawkes" }, "process"},
		{"both flavor filters", func(s *Spec) {
			s.Cohorts[2].FlavorNames = []string{"A1r1.75"}
		}, "both flavor_names and flavor_prefix"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := parseMutated(t, base, tc.edit)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestCompileFlavorResolution(t *testing.T) {
	spec := Preset("mixed")
	cfg, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Cohorts) != 3 {
		t.Fatalf("compiled %d cohorts, want 3", len(cfg.Cohorts))
	}
	// "A8" prefix over azure16 is the four 8-CPU flavors, indices 12-15.
	want := []int{12, 13, 14, 15}
	got := cfg.Cohorts[2].FlavorSubset
	if len(got) != len(want) {
		t.Fatalf("gpu subset %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("gpu subset %v, want %v", got, want)
		}
	}

	spec.Cohorts[2].FlavorPrefix = "Z9"
	if _, err := spec.Compile(); err == nil || !strings.Contains(err.Error(), "matches no flavors") {
		t.Fatalf("err = %v, want no-match error", err)
	}
	spec.Cohorts[2].FlavorPrefix = ""
	spec.Cohorts[2].FlavorNames = []string{"A8r7", "nope"}
	if _, err := spec.Compile(); err == nil || !strings.Contains(err.Error(), "unknown flavor") {
		t.Fatalf("err = %v, want unknown-flavor error", err)
	}
}

// TestCompileUserSplit: cohorts with users omitted split the spec pool
// by rate fraction.
func TestCompileUserSplit(t *testing.T) {
	spec := Preset("mixed")
	for i := range spec.Cohorts {
		spec.Cohorts[i].Users = 0
	}
	cfg, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{200, 120, 80} // 400 users split 0.5/0.3/0.2
	for i, co := range cfg.Cohorts {
		if co.Users != want[i] {
			t.Errorf("cohort %q users = %d, want %d", co.Name, co.Users, want[i])
		}
	}
}

// TestCompileCohortInheritance: nil override blocks inherit the base
// blocks wholesale; non-nil blocks replace them.
func TestCompileCohortInheritance(t *testing.T) {
	spec := Preset("mixed")
	cfg, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	inter := cfg.Cohorts[0] // no overrides: inherits all base blocks
	if inter.BatchSizeMean != spec.Batch.SizeMean || inter.UserZipf != spec.Population.Zipf {
		t.Errorf("interactive cohort should inherit base blocks: %+v", inter)
	}
	batch := cfg.Cohorts[1] // overrides batch + lifetime
	if batch.BatchSizeMean != 4.0 {
		t.Errorf("batch cohort size mean = %v, want 4", batch.BatchSizeMean)
	}
	if batch.UserZipf != spec.Population.Zipf {
		t.Errorf("batch cohort zipf should inherit base, got %v", batch.UserZipf)
	}
}

// TestCompiledSpecDrivesGeneration is the end-to-end acceptance check
// at the synth layer: a parsed three-cohort JSON spec compiles and
// generates a valid, deterministic trace with all cohorts active.
func TestCompiledSpecDrivesGeneration(t *testing.T) {
	data, err := Preset("mixed").Marshal()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := ParseSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	spec.Days = 3
	cfg, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	tr := cfg.Generate(4)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	bounds := []int{0, 240, 360, 400}
	seen := make([]bool, 3)
	for _, vm := range tr.VMs {
		for c := 0; c < 3; c++ {
			if vm.User >= bounds[c] && vm.User < bounds[c+1] {
				seen[c] = true
			}
		}
	}
	for c, ok := range seen {
		if !ok {
			t.Errorf("cohort %d generated no VMs", c)
		}
	}
}

func TestSummary(t *testing.T) {
	sum := Preset("mixed").Summary()
	if sum["name"] != "MixedCohorts" || sum["catalog"] != "azure16" {
		t.Fatalf("summary: %v", sum)
	}
	cohorts, ok := sum["cohorts"].([]map[string]any)
	if !ok || len(cohorts) != 3 {
		t.Fatalf("summary cohorts: %v", sum["cohorts"])
	}
	if cohorts[1]["process"] != "gamma" || cohorts[1]["cv"] != 2.0 {
		t.Fatalf("batch cohort summary: %v", cohorts[1])
	}
}
