package repro

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/synth"
	"repro/internal/trace"
)

const resumeEpochs = 3

// resumeFixture builds the small end-to-end training setup shared by
// the kill/resume property tests.
func resumeFixture(t *testing.T) (train *trace.Trace, catalog *trace.FlavorSet, testW trace.Window) {
	t.Helper()
	cfg := synth.AzureLike()
	cfg.Days = 3
	cfg.Users = 60
	cfg.BaseRate = 1.5
	full := cfg.Generate(7)
	trainW, _, testW := synth.StandardSplit(cfg.Days)
	return full.Slice(trainW, 0), full.Flavors, testW
}

// trainFullModel runs the full pipeline (arrival GLM + flavor LSTM +
// lifetime hazard net) with the given checkpoint spec.
func trainFullModel(t *testing.T, train *trace.Trace, spec *core.CheckpointSpec) *core.Model {
	t.Helper()
	m, err := core.TrainModel(train, core.ModelOptions{
		Train: core.TrainConfig{
			Hidden: 8, Layers: 2, SeqLen: 16, BatchSize: 4,
			Epochs: resumeEpochs, LR: 5e-3, Seed: 3,
			Checkpoint: spec,
		},
		Arrival: core.ArrivalOptions{Checkpoint: spec},
	})
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	return m
}

// trainAndGenerate trains with the given checkpoint spec and returns
// the serialized model plus the JSON bytes of a generated trace.
func trainAndGenerate(t *testing.T, train *trace.Trace, catalog *trace.FlavorSet, testW trace.Window, spec *core.CheckpointSpec) (modelBlob, traceJSON []byte) {
	t.Helper()
	m := trainFullModel(t, train, spec)
	var err error
	modelBlob, err = m.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal model: %v", err)
	}
	tr := core.WithCatalog(m.Generate(rng.New(11), testW), catalog)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("write trace: %v", err)
	}
	return modelBlob, buf.Bytes()
}

// cutDir simulates a crash at epoch boundary maxSeq: a fresh directory
// holding only the checkpoint files with sequence numbers <= maxSeq
// (across every training stage's prefix), exactly the on-disk state of
// a process killed right after that boundary's save.
func cutDir(t *testing.T, src string, maxSeq int) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		base := strings.TrimSuffix(name, ".ckpt")
		seq, err := strconv.Atoi(base[strings.LastIndex(base, "-")+1:])
		if err != nil {
			t.Fatal(err)
		}
		if seq > maxSeq {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestKillAndResumeBitExact is the end-to-end crash-recovery property
// (DESIGN.md §8): a full-pipeline training run killed at ANY epoch
// boundary and resumed from its checkpoint directory produces a final
// model — and the traces generated from it — byte-identical to the
// uninterrupted run, at both REPRO_PROCS=1 and 8. It also pins that
// enabling checkpointing at all changes nothing, and that a truncated
// newest checkpoint (torn write) falls back to the previous boundary
// instead of failing or drifting.
func TestKillAndResumeBitExact(t *testing.T) {
	train, catalog, testW := resumeFixture(t)

	wantModel, wantTrace := trainAndGenerate(t, train, catalog, testW, nil)
	if len(wantTrace) == 0 {
		t.Fatal("empty baseline trace")
	}

	// Checkpointing must be trajectory-neutral.
	dir := t.TempDir()
	gotModel, gotTrace := trainAndGenerate(t, train, catalog, testW,
		&core.CheckpointSpec{Dir: dir, Every: 1, Keep: -1})
	if !bytes.Equal(wantModel, gotModel) || !bytes.Equal(wantTrace, gotTrace) {
		t.Fatal("enabling checkpointing changed the trained model or its traces")
	}

	for _, procs := range []int{1, 8} {
		procs := procs
		t.Run("procs="+strconv.Itoa(procs), func(t *testing.T) {
			defer par.SetProcs(par.SetProcs(procs))
			for k := 1; k < resumeEpochs; k++ {
				m, tr := trainAndGenerate(t, train, catalog, testW, &core.CheckpointSpec{
					Dir: cutDir(t, dir, k), Every: 1, Keep: -1, Resume: true,
				})
				if !bytes.Equal(wantModel, m) {
					t.Fatalf("model resumed from boundary %d differs from uninterrupted run", k)
				}
				if !bytes.Equal(wantTrace, tr) {
					t.Fatalf("trace from model resumed at boundary %d differs", k)
				}
			}
		})
	}

	// Torn final write: truncate the newest checkpoint of every prefix;
	// resume must skip them, fall back to the previous boundary, and
	// still converge to identical bytes.
	torn := cutDir(t, dir, resumeEpochs+1)
	entries, err := os.ReadDir(torn)
	if err != nil {
		t.Fatal(err)
	}
	newest := map[string]string{} // prefix -> newest file name
	for _, e := range entries {
		base := strings.TrimSuffix(e.Name(), ".ckpt")
		prefix := base[:strings.LastIndex(base, "-")]
		if e.Name() > newest[prefix] {
			newest[prefix] = e.Name()
		}
	}
	for _, name := range newest {
		path := filepath.Join(torn, name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	m, tr := trainAndGenerate(t, train, catalog, testW, &core.CheckpointSpec{
		Dir: torn, Every: 1, Keep: -1, Resume: true,
	})
	if !bytes.Equal(wantModel, m) || !bytes.Equal(wantTrace, tr) {
		t.Fatal("resume after torn checkpoint write diverged from uninterrupted run")
	}
}
