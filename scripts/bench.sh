#!/bin/sh
# Runs the cross-PR benchmark suite and snapshots the results to
# BENCH_baseline.json so ns/op and MB/s are comparable across PRs.
# When a previous baseline exists it is preserved as
# BENCH_baseline.prev.json and a per-benchmark ns/op delta table is
# printed — the instrumentation layer (internal/obs, par counters,
# server middleware) budgets < 2% overhead on the kernel and
# generation benchmarks.
# Run from the repository root: scripts/bench.sh [benchtime]
#
# Caveat: on hosts with unstable clocks, deltas under ~10% between
# separate benchmark blocks are noise; for kernel-level decisions use
# the paired measurement instead:
#   go test ./internal/mat -run TestPairedKernelMeasure -v
set -eu

BENCHTIME="${1:-1s}"
OUT="BENCH_baseline.json"
PREV="BENCH_baseline.prev.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

if [ -f "$OUT" ]; then
	cp "$OUT" "$PREV"
fi

go test -run '^$' -bench . -benchtime "$BENCHTIME" . ./internal/mat ./internal/par ./internal/obs | tee "$TMP"

{
	echo '{'
	printf '  "benchtime": "%s",\n' "$BENCHTIME"
	printf '  "goos": "%s", "goarch": "%s", "ncpu": %s,\n' \
		"$(go env GOOS)" "$(go env GOARCH)" "$(getconf _NPROCESSORS_ONLN)"
	echo '  "benchmarks": ['
	awk '/^Benchmark/ {
		name=$1; iters=$2; nsop=$3
		mbs="null"
		for (i=4; i<=NF; i++) if ($i == "MB/s") mbs=$(i-1)
		if (n++) printf ",\n"
		printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"mb_per_s\": %s}", name, iters, nsop, mbs
	} END { print "" }' "$TMP"
	echo '  ]'
	echo '}'
} > "$OUT"

echo "bench.sh: wrote $OUT"

if [ -f "$PREV" ]; then
	echo
	echo "ns/op vs previous baseline (positive = slower; overhead target < 2%):"
	awk '
		/"name":/ {
			n=$0; sub(/.*"name": "/, "", n); sub(/".*/, "", n)
			v=$0; sub(/.*"ns_per_op": /, "", v); sub(/,.*/, "", v)
			if (FNR != NR && n in prev && prev[n] > 0)
				printf "  %-50s %12.1f -> %12.1f  %+6.2f%%\n", n, prev[n], v, 100 * (v - prev[n]) / prev[n]
			else if (FNR == NR)
				prev[n] = v
		}' "$PREV" "$OUT"
fi
