#!/bin/sh
# Runs the cross-PR benchmark suite and snapshots the results to
# BENCH_baseline.json so ns/op, MB/s, B/op and allocs/op are comparable
# across PRs. When a previous baseline exists it is preserved as
# BENCH_baseline.prev.json and per-benchmark delta tables are printed:
# ns/op (the instrumentation layer budgets < 2% overhead on the kernel
# and generation benchmarks) and allocs/op (the memory-discipline layer
# targets steady-state-zero hot paths; see DESIGN.md "Memory
# discipline").
# Run from the repository root: scripts/bench.sh [benchtime]
#
# Caveat: on hosts with unstable clocks, ns/op deltas under ~10% between
# separate benchmark blocks are noise; for kernel-level decisions use
# the paired measurement instead:
#   go test ./internal/mat -run TestPairedKernelMeasure -v
# allocs/op deltas are exact counts and carry no such noise.
set -eu

BENCHTIME="${1:-1s}"
OUT="BENCH_baseline.json"
PREV="BENCH_baseline.prev.json"
TMP="$(mktemp)"
DEDUP="$(mktemp)"
trap 'rm -f "$TMP" "$DEDUP"' EXIT

if [ -f "$OUT" ]; then
	cp "$OUT" "$PREV"
fi

# ncpu alone is not enough to interpret the parallel benchmarks: record
# the worker-count knobs actually in effect. Unset env vars mean the
# library defaulted — GOMAXPROCS to ncpu, REPRO_PROCS to GOMAXPROCS —
# so the effective values are always concrete numbers, never null.
NCPU="$(getconf _NPROCESSORS_ONLN)"
GOMAX_EFF="${GOMAXPROCS:-$NCPU}"
REPRO_EFF="${REPRO_PROCS:-$GOMAX_EFF}"

go test -run '^$' -bench . -benchmem -benchtime "$BENCHTIME" \
	. ./internal/mat ./internal/nn ./internal/par ./internal/obs | tee "$TMP"

# Decode iteration floor (DESIGN.md §6.5): the decode-fleet rows are
# heavyweight enough that a time-based -benchtime often yields a single
# iteration, which makes their ns/op and streams/s single-shot samples.
# Re-run the decode group at a fixed -benchtime 3x so every decode row
# in the baseline carries at least 3 iterations; the JSON writer below
# dedupes by row name keeping the LAST run, so these rows supersede the
# single-shot ones from the main block.
echo "bench.sh: decode-fleet benchmarks at -benchtime 3x iteration floor"
go test -run '^$' -bench 'GenerateBatchLSTM|GenerateShardedLSTM' \
	-benchmem -benchtime 3x . | \
	awk '/^Benchmark/ { print; print > "/dev/stderr" }' >> "$TMP"

# Multi-core scaling rows (DESIGN.md §6.3): re-run the decode-fleet
# benchmarks at fixed GOMAXPROCS values so the sharded engine's scaling
# curve is captured in the baseline. Rows are suffixed @gomaxprocs=G
# and carry a per-row "gomaxprocs" field; on hosts with fewer cores
# than G the rows still exist but cannot show speedup (the scheduler
# multiplexes all workers onto the available cores).
for G in 2 4 8; do
	echo "bench.sh: decode-fleet benchmarks at GOMAXPROCS=$G"
	GOMAXPROCS="$G" go test -run '^$' -bench 'GenerateBatchLSTM|GenerateShardedLSTM' \
		-benchmem -benchtime "$BENCHTIME" . | \
		awk -v g="$G" '/^Benchmark/ { $1 = $1 "@gomaxprocs=" g; print; print > "/dev/stderr" }' >> "$TMP"
done

# Packed-panel reference rows (DESIGN.md §6.5): re-run the decode group
# with the REPRO_NOPACK kill-switch so the baseline always carries the
# unpacked twin of every decode row. Rows are suffixed @nopack and use
# the same fixed iteration floor for a fair pairing.
echo "bench.sh: decode-fleet benchmarks with REPRO_NOPACK=1 (unpacked weights)"
REPRO_NOPACK=1 go test -run '^$' -bench 'GenerateBatchLSTM|GenerateShardedLSTM' \
	-benchmem -benchtime 3x . | \
	awk '/^Benchmark/ { $1 = $1 "@nopack"; print; print > "/dev/stderr" }' >> "$TMP"

# Precision delta (DESIGN.md §6.4): the f32 serving fast path is only
# worth its tolerance budget if it actually outruns f64, so report the
# streams/s ratio of each F32 decode row against its f64 twin (the row
# with the F32 suffix stripped). Both rows come from the same -bench .
# run above.
awk '
	/^BenchmarkGenerate(Batch|Sharded)LSTM[^ ]*F32(-[0-9]+)? / {
		name = $1; sub(/-[0-9]+$/, "", name)
		for (i = 4; i <= NF; i++) if ($i == "streams/s") f32[name] = $(i-1)
	}
	/^BenchmarkGenerate(Batch|Sharded)LSTM[^ ]* / && $1 !~ /F32/ {
		name = $1; sub(/-[0-9]+$/, "", name)
		for (i = 4; i <= NF; i++) if ($i == "streams/s") f64[name] = $(i-1)
	}
	END {
		for (n in f32) {
			base = n; sub(/F32$/, "", base)
			if (base in f64 && f64[base] > 0)
				printf "bench.sh: f32 vs f64: %s %.2f streams/s vs %s %.2f (%.2fx)\n", \
					n, f32[n], base, f64[base], f32[n] / f64[base]
		}
	}' "$TMP"

# Tracing-overhead pair (DESIGN.md §7.1): the serve-decode benchmark
# runs once with request tracing off and once with it on; report the
# ns/op delta explicitly so a tracing-path regression is visible at a
# glance rather than buried in the full table. Both rows are already in
# $TMP from the main -bench . run above.
awk '
	/^BenchmarkServeDecodeTracingOff/ { off = $3 }
	/^BenchmarkServeDecodeTracingOn/  { on = $3 }
	END {
		if (off > 0 && on > 0)
			printf "bench.sh: tracing overhead: %s -> %s ns/op (%+.2f%%; budget < 2%%)\n", \
				off, on, 100 * (on - off) / off
		else
			print "bench.sh: tracing overhead pair missing from run" > "/dev/stderr"
	}' "$TMP"

# Packed-vs-unpacked delta (DESIGN.md §6.5): report each decode row's
# streams/s against its @nopack twin from the kill-switch re-run above,
# so a packed-kernel regression (or a host where packing loses) is
# visible at a glance next to the f32-vs-f64 and tracing deltas. Both
# legs come from the same -benchtime 3x iteration floor.
awk '
	/^BenchmarkGenerate(Batch|Sharded)LSTM[^ ]*@nopack / {
		name = $1; sub(/@nopack$/, "", name); sub(/-[0-9]+$/, "", name)
		for (i = 4; i <= NF; i++) if ($i == "streams/s") np[name] = $(i-1)
	}
	/^BenchmarkGenerate(Batch|Sharded)LSTM[^ ]* / && $1 !~ /@/ {
		name = $1; sub(/-[0-9]+$/, "", name)
		for (i = 4; i <= NF; i++) if ($i == "streams/s") pk[name] = $(i-1)
	}
	END {
		for (n in np)
			if (n in pk && np[n] > 0)
				printf "bench.sh: packed vs unpacked: %s %.2f streams/s vs %.2f (%.2fx)\n", \
					n, pk[n], np[n], pk[n] / np[n]
	}' "$TMP"

# Last-wins dedup by row name: the iteration-floor decode re-runs above
# append rows whose names collide with the single-shot rows from the
# main block; keep only the final occurrence of each name (order
# preserved) so the baseline carries the floor-enforced measurements.
awk '/^Benchmark/ {
		if (!($1 in line)) order[++n] = $1
		line[$1] = $0
	} END { for (i = 1; i <= n; i++) print line[order[i]] }' "$TMP" > "$DEDUP"

{
	echo '{'
	printf '  "benchtime": "%s",\n' "$BENCHTIME"
	printf '  "goos": "%s", "goarch": "%s", "ncpu": %s, "repro_procs": %s, "gomaxprocs": %s,\n' \
		"$(go env GOOS)" "$(go env GOARCH)" "$NCPU" "$REPRO_EFF" "$GOMAX_EFF"
	echo '  "benchmarks": ['
	awk -v topgmp="$GOMAX_EFF" '/^Benchmark/ {
		name=$1; iters=$2; nsop=$3
		mbs="null"; bop="null"; allocs="null"; sps="null"
		for (i=4; i<=NF; i++) {
			if ($i == "MB/s") mbs=$(i-1)
			if ($i == "B/op") bop=$(i-1)
			if ($i == "allocs/op") allocs=$(i-1)
			if ($i == "streams/s") sps=$(i-1)
			if ($i == "replays/s") sps=$(i-1)
		}
		gmp = topgmp
		if (match(name, /@gomaxprocs=[0-9]+/))
			gmp = substr(name, RSTART+12, RLENGTH-12)
		# Precision of the kernel under test: the f32 serving-path
		# benchmarks carry an F32 suffix or a 32 in the kernel name
		# (Dense32/Fleet32/Slice32); everything else is float64.
		prec = "f64"
		if (name ~ /32/) prec = "f32"
		if (n++) printf ",\n"
		printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"mb_per_s\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s, \"streams_per_s\": %s, \"gomaxprocs\": %s, \"precision\": \"%s\"}", \
			name, iters, nsop, mbs, bop, allocs, sps, gmp, prec
	} END { print "" }' "$DEDUP"
	echo '  ]'
	echo '}'
} > "$OUT"

echo "bench.sh: wrote $OUT"

if [ -f "$PREV" ]; then
	echo
	echo "vs previous baseline (ns/op: positive = slower; allocs/op: positive = more allocation):"
	awk '
		/"name":/ {
			n=$0; sub(/.*"name": "/, "", n); sub(/".*/, "", n)
			v=$0; sub(/.*"ns_per_op": /, "", v); sub(/,.*/, "", v)
			a="n/a"
			if ($0 ~ /"allocs_per_op":/) {
				a=$0; sub(/.*"allocs_per_op": /, "", a); sub(/[,}].*/, "", a)
			}
			if (FNR != NR && n in prev && prev[n] > 0) {
				da = "      n/a"
				if (a != "null" && a != "n/a" && palloc[n] != "null" && palloc[n] != "n/a" && palloc[n] != "")
					da = sprintf("%8s -> %8s", palloc[n], a)
				printf "  %-50s %12.1f -> %12.1f ns/op %+6.2f%%   allocs %s\n", \
					n, prev[n], v, 100 * (v - prev[n]) / prev[n], da
			} else if (FNR == NR) {
				prev[n] = v
				palloc[n] = a
			}
		}' "$PREV" "$OUT"
fi
