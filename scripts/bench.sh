#!/bin/sh
# Runs the cross-PR benchmark suite and snapshots the results to
# BENCH_baseline.json so ns/op and MB/s are comparable across PRs.
# Run from the repository root: scripts/bench.sh [benchtime]
#
# Caveat: on hosts with unstable clocks, deltas under ~10% between
# separate benchmark blocks are noise; for kernel-level decisions use
# the paired measurement instead:
#   go test ./internal/mat -run TestPairedKernelMeasure -v
set -eu

BENCHTIME="${1:-1s}"
OUT="BENCH_baseline.json"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench . -benchtime "$BENCHTIME" . ./internal/mat | tee "$TMP"

{
	echo '{'
	printf '  "benchtime": "%s",\n' "$BENCHTIME"
	printf '  "goos": "%s", "goarch": "%s", "ncpu": %s,\n' \
		"$(go env GOOS)" "$(go env GOARCH)" "$(getconf _NPROCESSORS_ONLN)"
	echo '  "benchmarks": ['
	awk '/^Benchmark/ {
		name=$1; iters=$2; nsop=$3
		mbs="null"
		for (i=4; i<=NF; i++) if ($i == "MB/s") mbs=$(i-1)
		if (n++) printf ",\n"
		printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"mb_per_s\": %s}", name, iters, nsop, mbs
	} END { print "" }' "$TMP"
	echo '  ]'
	echo '}'
} > "$OUT"

echo "bench.sh: wrote $OUT"
