#!/bin/sh
# Race-detection tier for the packages that carry production
# concurrency (the parallel execution layer and everything threaded
# through it, the metrics registry, the HTTP service with hot model
# reload, the continuous-batching decode engine, and the checkpoint
# store), plus the end-to-end determinism and crash-recovery regression
# tests (REPRO_PROCS=1 vs 8, observability on/off, kill-and-resume),
# plus a short-budget fuzz tier over the untrusted decode surfaces.
# Run from the repository root: scripts/check.sh
set -eu

go vet ./...
go test -race ./internal/par ./internal/mat ./internal/nn ./internal/obs \
	./internal/server ./internal/core ./internal/ckpt ./internal/rng
go test -race -run 'TestDeterminism|TestObservability|TestKillAndResume|TestBatchedFleet' .

# Short-budget fuzz tier: each target gets a few seconds of coverage-
# guided input on top of its checked-in seed corpus. Skipped cleanly on
# toolchains without native fuzzing support.
if go help testflag 2>/dev/null | grep -q -- '-fuzz '; then
	go test -run '^$' -fuzz FuzzSnapshotDecode -fuzztime 10s ./internal/core
	go test -run '^$' -fuzz FuzzGenerateRequest -fuzztime 10s ./internal/server
else
	echo "check.sh: go toolchain lacks -fuzz; skipping fuzz tier"
fi

echo "check.sh: vet + race + determinism + resume + fuzz OK"
