#!/bin/sh
# Race-detection tier for the packages that carry production
# concurrency (the parallel execution layer and everything threaded
# through it, the metrics registry, the HTTP service with hot model
# reload, the continuous-batching decode engine, the checkpoint
# store, the request-trace ring, the fidelity drift monitor, and the
# workload spec/record layer), plus
# the end-to-end determinism and crash-recovery regression
# tests (REPRO_PROCS=1 vs 8, observability on/off, kill-and-resume),
# plus a pure-Go kernel tier (REPRO_NOASM under -race) and a
# short-budget fuzz tier over the untrusted decode surfaces.
# Run from the repository root: scripts/check.sh
set -eu

go vet ./...
go test -race ./internal/par ./internal/mat ./internal/nn ./internal/obs \
	./internal/server ./internal/core ./internal/ckpt ./internal/rng \
	./internal/rtrace ./internal/fidelity ./internal/workload
go test -race -run 'TestDeterminism|TestObservability|TestKillAndResume|TestBatchedFleet' .

# Sharded decode tier (DESIGN.md §6.3): the determinism and hot-reload
# guarantees must hold when the shards genuinely step on multiple cores,
# so force GOMAXPROCS=4 regardless of the host default.
GOMAXPROCS=4 go test -race \
	-run 'TestShardedDecodeDeterminism|TestShardedEngine|TestShardOf|TestFleetConcurrentShards' \
	./internal/core ./internal/nn
GOMAXPROCS=4 go test -race -run 'TestHotReloadUnderLoad|TestMetricsShardGauges|TestShardedServerMatchesBatched' \
	./internal/server

# Pure-Go kernel tier (DESIGN.md §6.4): REPRO_NOASM forces every
# assembly kernel onto its portable fallback, so the bit-identity
# contracts (f64 decode determinism, f32 cross-engine identity, GEMM
# and activation parity) are proven on the exact code non-amd64 hosts
# run — under -race, which the assembly paths cannot be.
REPRO_NOASM=1 go test -race ./internal/mat ./internal/nn ./internal/core

# Packed-panel parity tier (DESIGN.md §6.5): REPRO_NOPACK drops every
# decode fleet and forward GEMM back to the unpacked kernels; the same
# byte-identity suites must pass, proving the kill-switch cannot change
# a trace. The -race leg also races the packed kernels (epilogue
# closures run inside concurrently stepped per-shard fleets), and the
# combined NOASM+NOPACK leg pins the fully-portable, fully-unpacked
# floor every other configuration is measured against.
REPRO_NOPACK=1 go test -race ./internal/mat ./internal/nn ./internal/core
REPRO_NOPACK=1 REPRO_NOASM=1 go test \
	-run 'TestShardedDecodeDeterminism|TestPrecisionRegistryMatrix|TestPackedDecode|TestBatchedFleet' \
	./internal/core .
REPRO_NOPACK=1 go test -run 'TestHotReloadRepacksPanels' ./internal/server

# Memory-discipline pins: the per-shard round path, the fleet step
# kernel, and the par Snapshot poll must stay allocation-free in steady
# state, and the Table4 survival-MSE sweep must hold its pooled-curve
# allocation budget (AllocsPerRun pins run without -race; the race
# runtime's instrumentation allocates).
go test -run 'TestShardedRoundSteadyStateAllocs|TestTracingDisabledRoundAllocs' ./internal/core
go test -run 'TestFleetStepAllocFree|TestFleetPackedStepAllocFree' ./internal/nn
go test -run 'TestSnapshotZeroAlloc' ./internal/par
go test -run 'TestTable4SurvivalAllocs' ./internal/experiments

# Short-budget fuzz tier: each target gets a few seconds of coverage-
# guided input on top of its checked-in seed corpus. Skipped cleanly on
# toolchains without native fuzzing support.
if go help testflag 2>/dev/null | grep -q -- '-fuzz '; then
	go test -run '^$' -fuzz 'FuzzSnapshotDecode$' -fuzztime 10s ./internal/core
	go test -run '^$' -fuzz 'FuzzSnapshotDecodeF32$' -fuzztime 10s ./internal/core
	go test -run '^$' -fuzz FuzzGenerateRequest -fuzztime 10s ./internal/server
	go test -run '^$' -fuzz FuzzMulAddPacked -fuzztime 10s ./internal/mat
	go test -run '^$' -fuzz 'FuzzWorkloadSpec$' -fuzztime 10s ./internal/workload
	go test -run '^$' -fuzz 'FuzzTraceReplay$' -fuzztime 10s ./internal/workload
else
	echo "check.sh: go toolchain lacks -fuzz; skipping fuzz tier"
fi

echo "check.sh: vet + race + noasm + nopack + determinism + sharded + alloc pins + resume + fuzz OK"
