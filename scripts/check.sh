#!/bin/sh
# Race-detection tier for the packages that carry production
# concurrency (the parallel execution layer and everything threaded
# through it, including the metrics registry and the HTTP service),
# plus the end-to-end determinism regression tests: REPRO_PROCS=1 vs 8
# and observability-on vs observability-off. Run from the repository
# root: scripts/check.sh
set -eu

go vet ./...
go test -race ./internal/par ./internal/mat ./internal/nn ./internal/obs ./internal/server
go test -race -run 'TestDeterminism|TestObservability' .

echo "check.sh: vet + race + determinism OK"
