#!/bin/sh
# Race-detection tier for the packages that carry production
# concurrency (the parallel execution layer and everything threaded
# through it, the metrics registry, the HTTP service, and the
# continuous-batching decode engine in internal/core), plus the
# end-to-end determinism regression tests: REPRO_PROCS=1 vs 8 and
# observability-on vs observability-off. Run from the repository
# root: scripts/check.sh
set -eu

go vet ./...
go test -race ./internal/par ./internal/mat ./internal/nn ./internal/obs ./internal/server ./internal/core
go test -race -run 'TestDeterminism|TestObservability' .

echo "check.sh: vet + race + determinism OK"
