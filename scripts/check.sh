#!/bin/sh
# Race-detection tier for the packages that carry production
# concurrency (the parallel execution layer and everything threaded
# through it), plus the end-to-end determinism regression test at
# REPRO_PROCS=1 vs 8. Run from the repository root: scripts/check.sh
set -eu

go vet ./...
go test -race ./internal/par ./internal/mat ./internal/nn
go test -race -run 'TestDeterminism' .

echo "check.sh: vet + race + determinism OK"
